// Windowed SLO tracker (ISSUE 8): deadline-hit-rate and error-budget burn
// over a sliding time window, lock-free on the record path.
//
// The window is a ring of fixed-width time buckets, each holding atomic
// {total, missed} counts tagged with the absolute bucket index they cover.
// record() hashes the caller-supplied monotonic timestamp to a bucket and
// resets it first if the ring has lapped it (a CAS decides one resetter;
// the reset itself is racy-by-design, like every Prometheus-style counter
// here — an interleaved record may land in a just-reset bucket, which is
// exactly where it belongs, or be lost, which observability tolerates).
//
// Times are milliseconds on whatever monotonic clock the caller uses
// (serve::Server feeds its own Timer); the tracker never reads a clock
// itself, so tests drive every edge case with synthetic timestamps.
//
// Error-budget burn: with objective h (e.g. 0.99 hit rate), the window's
// burn rate is miss_rate / (1 - h) — burn 1.0 means the budget is being
// consumed exactly as fast as it accrues, >1 means the SLO will be blown
// if the window's behavior persists.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace stepping::obs {

class SloTracker {
 public:
  struct Config {
    double window_sec = 60.0;  ///< sliding window covered by the buckets
    int buckets = 60;          ///< time resolution of the window
    double objective = 0.99;   ///< deadline-hit-rate objective in (0, 1)
  };

  SloTracker();  ///< default Config
  explicit SloTracker(Config cfg);

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  const Config& config() const { return cfg_; }

  /// Record one finished request at monotonic time `at_ms`.
  void record(double at_ms, bool miss);

  struct WindowStats {
    std::uint64_t total = 0;
    std::uint64_t missed = 0;
    double hit_rate = 1.0;    ///< 1.0 on an empty window (no evidence of harm)
    double budget_burn = 0.0; ///< miss_rate / (1 - objective); 0 when empty
  };

  /// Stats over the window ending at `now_ms` (buckets older than the
  /// window are excluded even if not yet overwritten).
  WindowStats window(double now_ms) const;

  /// One-line human-readable summary, e.g.
  ///   slo: window=60s completed=182 misses=3 hit_rate=98.35%
  ///        objective=99.00% budget_burn=1.65x
  std::string summary(double now_ms) const;

 private:
  struct Bucket {
    std::atomic<std::int64_t> id{-1};  ///< absolute bucket index, -1 = empty
    std::atomic<std::uint64_t> total{0};
    std::atomic<std::uint64_t> missed{0};
  };

  Config cfg_;
  double bucket_ms_ = 1000.0;
  std::vector<Bucket> buckets_;
};

}  // namespace stepping::obs
