// Span tracer emitting Chrome trace-event / Perfetto-compatible JSON (ISSUE 3).
//
// Activation:
//   * STEPPING_TRACE=<path> in the environment arms the tracer at process
//     start and flushes the trace to <path> at normal process exit;
//   * trace_start(path) / trace_stop() give programmatic control (tests,
//     benchmarks). trace_stop() flushes and returns event statistics.
//   * STEPPING_TRACE_FLUSH_SEC=<seconds> (may be fractional) additionally
//     starts a background flusher thread that rewrites <path> every period
//     while tracing stays armed — long-running processes (serve) get an
//     inspectable, always-valid JSON trace without waiting for exit.
//     Periodic flushes do not reset the buffers; the file is rewritten
//     whole each time, so it is complete up to the moment of the flush.
//
// Recording:
//   * STEPPING_TRACE_SCOPE("name") opens an RAII span over the enclosing
//     scope; STEPPING_TRACE_SCOPE_CAT("cat", "name") also sets the Perfetto
//     category. Both names MUST be string literals (or otherwise outlive the
//     flush) — only the pointers are stored on the hot path.
//   * TraceScope::arg("key", value) attaches up to kMaxArgs integer args to
//     a span (Perfetto "args" object; keys must be string literals too).
//   * trace_counter("name", v) records a counter-track sample (e.g. queue
//     depth over time).
//
// Cost model: with tracing off, a scope is one relaxed atomic load and a
// branch — bench_obs measures it in the ~1 ns range, invisible next to any
// kernel. With tracing on, each thread appends fixed-size (~104-byte)
// events to its own fixed-capacity buffer with no locks, no allocation and
// no syscalls on the hot path (buffers fill-and-drop rather than wrap, so
// flushing never races slot reuse); the only mutex is taken once per thread
// at buffer creation and at flush.
//
// Determinism contract: tracing reads clocks and writes thread-local memory.
// It never changes numerics, scheduling or allocation of the traced code, so
// results remain bitwise identical with tracing on or off (asserted by
// obs_trace_test and the serve parity tests).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace stepping::obs {

/// Max integer args attachable to one span (fixed slots in the event).
inline constexpr int kTraceMaxArgs = 4;

namespace detail {

/// The only hot-path state: relaxed-loaded by every STEPPING_TRACE_SCOPE.
extern std::atomic<bool> g_trace_on;

/// Nanoseconds on the trace clock (monotonic, 0 = tracer arm time).
std::int64_t trace_now_ns();

void record_span(const char* name, const char* cat, std::int64_t start_ns,
                 std::int64_t end_ns);
/// Span with integer args; `keys` entries must be string literals (only the
/// pointers are stored). nargs <= kTraceMaxArgs.
void record_span_args(const char* name, const char* cat, std::int64_t start_ns,
                      std::int64_t end_ns, const char* const* keys,
                      const std::int64_t* vals, int nargs);
void record_counter(const char* name, std::int64_t value);

}  // namespace detail

inline bool trace_enabled() {
  return detail::g_trace_on.load(std::memory_order_relaxed);
}

/// Statistics returned by trace_stop().
struct TraceStats {
  std::size_t events = 0;   ///< events written to the trace file
  std::size_t dropped = 0;  ///< events lost to full per-thread buffers
};

/// Arm the tracer: spans recorded from now on are written to `path` by
/// trace_stop() or the process-exit flush. `buffer_events` sets the
/// per-thread buffer capacity for buffers created after this call
/// (0 = STEPPING_TRACE_BUF env var, default 1<<18 events ≈ 26 MiB/thread).
/// Calling while already armed only swaps the output path.
void trace_start(const std::string& path, std::size_t buffer_events = 0);

/// Disarm, flush every thread buffer to the armed path, reset the buffers.
/// Threads must be quiescent (no spans in flight) for a complete flush —
/// in-flight events may be missed, never torn. No-op when never armed.
/// Joins the periodic flusher (if STEPPING_TRACE_FLUSH_SEC started one)
/// before flushing.
TraceStats trace_stop();

/// Rewrite the armed path with everything recorded so far WITHOUT
/// disarming or resetting the buffers (the periodic flusher calls this;
/// also useful programmatically around phases of interest). Concurrent
/// recording is safe — events published before the call are included,
/// in-flight ones appear in the next flush. No-op when not armed.
TraceStats trace_flush();

/// Label the calling thread in the trace (Perfetto thread_name metadata).
/// Cheap; safe to call whether or not tracing is armed.
void trace_thread_name(const std::string& name);

/// Record a counter-track sample; a single relaxed load when tracing is off.
inline void trace_counter(const char* name, std::int64_t value) {
  if (trace_enabled()) detail::record_counter(name, value);
}

/// RAII span. Prefer the STEPPING_TRACE_SCOPE macros.
class TraceScope {
 public:
  explicit TraceScope(const char* name, const char* cat = "app")
      : active_(trace_enabled()) {
    if (active_) {
      name_ = name;
      cat_ = cat;
      start_ns_ = detail::trace_now_ns();
    }
  }
  ~TraceScope() {
    if (active_) {
      detail::record_span_args(name_, cat_, start_ns_, detail::trace_now_ns(),
                               akeys_, avals_, nargs_);
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// Attach an integer arg to this span ("args" object in the trace JSON).
  /// `key` must be a string literal. Silently drops past kTraceMaxArgs;
  /// a no-op when the scope is inactive.
  void arg(const char* key, std::int64_t value) {
    if (active_ && nargs_ < kTraceMaxArgs) {
      akeys_[nargs_] = key;
      avals_[nargs_] = value;
      ++nargs_;
    }
  }

 private:
  const bool active_;  ///< armed at construction; the span records even if
                       ///< tracing is disarmed before it closes
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::int64_t start_ns_ = 0;
  const char* akeys_[kTraceMaxArgs] = {};
  std::int64_t avals_[kTraceMaxArgs] = {};
  int nargs_ = 0;
};

}  // namespace stepping::obs

#define STEPPING_TRACE_CONCAT2(a, b) a##b
#define STEPPING_TRACE_CONCAT(a, b) STEPPING_TRACE_CONCAT2(a, b)

/// Span over the enclosing scope; `name` must be a string literal.
#define STEPPING_TRACE_SCOPE(name)              \
  ::stepping::obs::TraceScope STEPPING_TRACE_CONCAT(stepping_trace_scope_, \
                                                    __LINE__)(name)

/// Span with an explicit Perfetto category (both string literals).
#define STEPPING_TRACE_SCOPE_CAT(cat, name)     \
  ::stepping::obs::TraceScope STEPPING_TRACE_CONCAT(stepping_trace_scope_, \
                                                    __LINE__)(name, cat)
