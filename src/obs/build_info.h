// Build identity exposition (ISSUE 8): the `stepping_build_info` labeled
// gauge carries version / git sha / ISA tier / precision mode so fleet
// dashboards can slice every other metric by deployment identity.
//
// Version and git sha are baked in at compile time (STEPPING_VERSION and
// STEPPING_GIT_SHA compile definitions, confined to build_info.cc so a new
// sha only recompiles this one file). ISA tier and precision are runtime
// properties the *caller* passes in: this code lives in stepping_util,
// which cannot depend on the tensor library that owns ISA detection.
#pragma once

#include <string>

namespace stepping::obs {

class Registry;

/// Compile-time version string (CMake project VERSION), "unknown" when the
/// build did not define it.
const char* build_version();

/// Short git sha of the built tree, "unknown" outside a git checkout.
const char* build_git_sha();

/// Register the `stepping_build_info` info metric on `reg` with labels
/// {version, git_sha, isa, precision}. Idempotent; calling again replaces
/// the labels (e.g. after a precision-mode change).
void register_build_info(Registry& reg, const std::string& isa,
                         const std::string& precision);

}  // namespace stepping::obs
