#include "obs/slo.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace stepping::obs {

SloTracker::SloTracker() : SloTracker(Config()) {}

SloTracker::SloTracker(Config cfg) : cfg_(cfg) {
  cfg_.buckets = std::max(1, cfg_.buckets);
  cfg_.window_sec = std::max(1e-3, cfg_.window_sec);
  cfg_.objective = std::clamp(cfg_.objective, 0.0, 0.999999);
  bucket_ms_ = cfg_.window_sec * 1e3 / cfg_.buckets;
  buckets_ = std::vector<Bucket>(static_cast<std::size_t>(cfg_.buckets));
}

void SloTracker::record(double at_ms, bool miss) {
  const std::int64_t id =
      static_cast<std::int64_t>(std::floor(std::max(0.0, at_ms) / bucket_ms_));
  Bucket& b = buckets_[static_cast<std::size_t>(
      id % static_cast<std::int64_t>(buckets_.size()))];
  std::int64_t cur = b.id.load(std::memory_order_relaxed);
  if (cur != id) {
    // The ring lapped this bucket: one CAS winner resets it for the new
    // interval; losers (and the winner) then count into the fresh bucket.
    if (b.id.compare_exchange_strong(cur, id, std::memory_order_acq_rel)) {
      b.total.store(0, std::memory_order_relaxed);
      b.missed.store(0, std::memory_order_relaxed);
    } else if (cur != id) {
      return;  // a concurrent record from a different interval won; drop
    }
  }
  b.total.fetch_add(1, std::memory_order_relaxed);
  if (miss) b.missed.fetch_add(1, std::memory_order_relaxed);
}

SloTracker::WindowStats SloTracker::window(double now_ms) const {
  const std::int64_t now_id =
      static_cast<std::int64_t>(std::floor(std::max(0.0, now_ms) / bucket_ms_));
  const std::int64_t oldest =
      now_id - static_cast<std::int64_t>(buckets_.size()) + 1;
  WindowStats s;
  for (const Bucket& b : buckets_) {
    const std::int64_t id = b.id.load(std::memory_order_relaxed);
    if (id < oldest || id > now_id) continue;  // stale or future-tagged
    s.total += b.total.load(std::memory_order_relaxed);
    s.missed += b.missed.load(std::memory_order_relaxed);
  }
  if (s.total > 0) {
    const double miss_rate =
        static_cast<double>(s.missed) / static_cast<double>(s.total);
    s.hit_rate = 1.0 - miss_rate;
    s.budget_burn = miss_rate / (1.0 - cfg_.objective);
  }
  return s;
}

std::string SloTracker::summary(double now_ms) const {
  const WindowStats s = window(now_ms);
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "slo: window=%.0fs completed=%llu misses=%llu "
                "hit_rate=%.2f%% objective=%.2f%% budget_burn=%.2fx",
                cfg_.window_sec, static_cast<unsigned long long>(s.total),
                static_cast<unsigned long long>(s.missed), 100.0 * s.hit_rate,
                100.0 * cfg_.objective, s.budget_burn);
  return buf;
}

}  // namespace stepping::obs
