#include "obs/flight.h"

#include <algorithm>
#include <cstdio>

#include "util/env.h"

namespace stepping::obs {

namespace {

constexpr long kDefaultRing = 1024;
constexpr long kDefaultRetain = 32;
constexpr long kDefaultStragglers = 8;
/// Hard cap on the ring (a slot is ~1.5 KiB; 1<<20 records ≈ 1.5 GiB is
/// already far past any sane configuration).
constexpr long kMaxRing = 1 << 20;

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

const char* flight_event_name(FlightEventKind k) {
  switch (k) {
    case FlightEventKind::kEnqueue: return "enqueue";
    case FlightEventKind::kAdmit: return "admit";
    case FlightEventKind::kBatchJoin: return "batch_join";
    case FlightEventKind::kStepStart: return "step_start";
    case FlightEventKind::kStepEnd: return "step_end";
    case FlightEventKind::kPrelimPublish: return "prelim_publish";
    case FlightEventKind::kHalt: return "halt";
    case FlightEventKind::kFinalPublish: return "final_publish";
    case FlightEventKind::kAdmitDecision: return "admit_decision";
    case FlightEventKind::kBatchRejoin: return "batch_rejoin";
    case FlightEventKind::kStreamFrame: return "stream_frame";
    case FlightEventKind::kDeltaReuse: return "delta_reuse";
  }
  return "unknown";
}

const char* halt_reason_name(HaltReason r) {
  switch (r) {
    case HaltReason::kNone: return "none";
    case HaltReason::kTarget: return "target";
    case HaltReason::kConfidence: return "confidence";
    case HaltReason::kBudget: return "budget";
    case HaltReason::kDeadline: return "deadline";
    case HaltReason::kMaxLevel: return "max_level";
    case HaltReason::kShutdown: return "shutdown";
    case HaltReason::kRejected: return "rejected";
    case HaltReason::kAdmitRejected: return "admit_rejected";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder() : FlightRecorder(Config()) {}

FlightRecorder::FlightRecorder(Config cfg) {
  long ring = cfg.ring >= 0 ? cfg.ring
                            : env_or_int("STEPPING_FLIGHT_RING", kDefaultRing);
  ring = std::clamp<long>(ring, 0, kMaxRing);
  ring_ = std::vector<Slot>(static_cast<std::size_t>(ring));
  const long retain =
      cfg.retain_misses >= 0
          ? cfg.retain_misses
          : env_or_int("STEPPING_FLIGHT_RETAIN", kDefaultRetain);
  const long stragglers =
      cfg.retain_stragglers >= 0
          ? cfg.retain_stragglers
          : env_or_int("STEPPING_FLIGHT_STRAGGLERS", kDefaultStragglers);
  retain_misses_cap_ = static_cast<std::size_t>(std::max<long>(0, retain));
  retain_stragglers_cap_ =
      static_cast<std::size_t>(std::max<long>(0, stragglers));
}

FlightHandle FlightRecorder::begin(std::uint64_t request_id, double submit_ms,
                                   double deadline_abs_ms,
                                   std::int64_t mac_budget) {
  if (ring_.empty()) return {};
  const std::uint64_t idx =
      cursor_.fetch_add(1, std::memory_order_relaxed) % ring_.size();
  Slot& slot = ring_[static_cast<std::size_t>(idx)];
  std::uint32_t expected = slot.state.load(std::memory_order_relaxed);
  // One CAS attempt, never a wait: an open slot means the ring wrapped onto
  // a request that is still in flight — drop THIS request's recording.
  if (expected == kOpen ||
      !slot.state.compare_exchange_strong(expected, kOpen,
                                          std::memory_order_acq_rel)) {
    ring_dropped_.fetch_add(1, std::memory_order_relaxed);
    return {};
  }
  slot.d = FlightData{};
  slot.d.request_id = request_id;
  slot.d.submit_ms = submit_ms;
  slot.d.deadline_abs_ms = deadline_abs_ms;
  slot.d.mac_budget = mac_budget;
  records_.fetch_add(1, std::memory_order_relaxed);
  return FlightHandle{&slot};
}

void FlightRecorder::event(FlightHandle h, FlightEventKind k, double t_ms,
                           std::int64_t a0, std::int64_t a1, std::int64_t a2) {
  if (!h) return;
  FlightData& d = static_cast<Slot*>(h.slot)->d;
  if (d.num_events >= kFlightMaxEvents) {
    ++d.events_dropped;
    events_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  FlightEvent& e = d.events[d.num_events++];
  e.kind = k;
  e.t_ms = t_ms;
  e.a0 = a0;
  e.a1 = a1;
  e.a2 = a2;
}

void FlightRecorder::set_batch(FlightHandle h, std::uint64_t batch_id,
                               int batch_size, int planned_target,
                               int precision, int isa_tier) {
  if (!h) return;
  FlightData& d = static_cast<Slot*>(h.slot)->d;
  d.batch_id = batch_id;
  d.batch_size = batch_size;
  d.planned_target = planned_target;
  d.precision = precision;
  d.isa_tier = isa_tier;
}

void FlightRecorder::set_level(FlightHandle h, int level, double predicted_ms,
                               double actual_ms, std::int64_t macs) {
  if (!h || level < 1 || level > kFlightMaxLevels) return;
  FlightData& d = static_cast<Slot*>(h.slot)->d;
  d.predicted_ms[level - 1] = predicted_ms;
  d.actual_ms[level - 1] = actual_ms;
  d.level_macs[level - 1] = macs;
  d.num_levels = std::max(d.num_levels, level);
}

void FlightRecorder::finish(FlightHandle h, int exit_level, HaltReason halt,
                            bool missed, double queue_ms, double first_ms,
                            double final_ms) {
  if (!h) return;
  Slot& slot = *static_cast<Slot*>(h.slot);
  FlightData& d = slot.d;
  d.exit_level = exit_level;
  d.halt = halt;
  d.missed = missed;
  d.queue_ms = queue_ms;
  d.first_ms = first_ms;
  d.final_ms = final_ms;
  // Retention is the rare path: misses always qualify; completed requests
  // only when they beat the straggler floor (one relaxed load otherwise).
  // Rejected records (exit_level == 0) are not postmortem material.
  if (exit_level > 0 &&
      (missed || final_ms > straggler_floor_.load(std::memory_order_relaxed))) {
    retain(d);
  }
  slot.state.store(kDone, std::memory_order_release);
}

void FlightRecorder::retain(const FlightData& d) {
  std::lock_guard<std::mutex> lock(retained_mu_);
  if (d.missed && retain_misses_cap_ > 0) {
    misses_.push_back(d);
    if (misses_.size() > retain_misses_cap_) misses_.pop_front();
  }
  if (retain_stragglers_cap_ == 0) return;
  if (stragglers_.size() >= retain_stragglers_cap_ &&
      d.final_ms <= stragglers_.back().final_ms) {
    return;  // raced past the relaxed floor; the real floor says no
  }
  const auto at = std::upper_bound(
      stragglers_.begin(), stragglers_.end(), d,
      [](const FlightData& a, const FlightData& b) {
        return a.final_ms > b.final_ms;
      });
  stragglers_.insert(at, d);
  if (stragglers_.size() > retain_stragglers_cap_) stragglers_.pop_back();
  if (stragglers_.size() >= retain_stragglers_cap_) {
    straggler_floor_.store(stragglers_.back().final_ms,
                           std::memory_order_relaxed);
  }
}

namespace {

void append_event_json(std::string& out, const FlightEvent& e) {
  out += "{\"t_ms\":" + fmt_double(e.t_ms) + ",\"event\":\"" +
         flight_event_name(e.kind) + "\"";
  switch (e.kind) {
    case FlightEventKind::kEnqueue:
      break;
    case FlightEventKind::kAdmit:
      out += ",\"worker\":" + std::to_string(e.a0);
      break;
    case FlightEventKind::kBatchJoin:
      out += ",\"batch_id\":" + std::to_string(e.a0) +
             ",\"size\":" + std::to_string(e.a1);
      break;
    case FlightEventKind::kStepStart:
      out += ",\"level\":" + std::to_string(e.a0) +
             ",\"int8\":" + std::to_string(e.a1) +
             ",\"isa\":" + std::to_string(e.a2);
      break;
    case FlightEventKind::kStepEnd:
      out += ",\"level\":" + std::to_string(e.a0) +
             ",\"macs\":" + std::to_string(e.a1) +
             ",\"confidence_ppm\":" + std::to_string(e.a2);
      break;
    case FlightEventKind::kPrelimPublish:
      out += ",\"level\":" + std::to_string(e.a0) +
             ",\"confidence_ppm\":" + std::to_string(e.a1);
      break;
    case FlightEventKind::kHalt:
      out += std::string(",\"reason\":\"") +
             halt_reason_name(static_cast<HaltReason>(e.a0)) +
             "\",\"level\":" + std::to_string(e.a1);
      break;
    case FlightEventKind::kFinalPublish:
      out += ",\"level\":" + std::to_string(e.a0) +
             ",\"missed\":" + std::to_string(e.a1);
      break;
    case FlightEventKind::kAdmitDecision:
      out += std::string(",\"verdict\":\"") +
             (e.a0 == 0 ? "accept" : e.a0 == 1 ? "degrade" : "reject") +
             "\",\"target\":" + std::to_string(e.a1) +
             ",\"predicted_wait_us\":" + std::to_string(e.a2);
      break;
    case FlightEventKind::kBatchRejoin:
      out += ",\"batch_id\":" + std::to_string(e.a0) +
             ",\"size\":" + std::to_string(e.a1) +
             ",\"level\":" + std::to_string(e.a2);
      break;
    case FlightEventKind::kStreamFrame:
      out += ",\"stream_id\":" + std::to_string(e.a0) +
             ",\"dirty_tiles\":" + std::to_string(e.a1) +
             ",\"level\":" + std::to_string(e.a2);
      break;
    case FlightEventKind::kDeltaReuse:
      out += ",\"macs_saved\":" + std::to_string(e.a0) +
             ",\"macs\":" + std::to_string(e.a1) +
             ",\"reused\":" + std::to_string(e.a2);
      break;
  }
  out += "}";
}

void append_record_json(std::string& out, const FlightData& d,
                        const char* kind) {
  out += "{\"kind\":\"";
  out += kind;
  out += "\",\"request_id\":" + std::to_string(d.request_id) +
         ",\"submit_ms\":" + fmt_double(d.submit_ms) +
         ",\"deadline_abs_ms\":" + fmt_double(d.deadline_abs_ms) +
         ",\"mac_budget\":" + std::to_string(d.mac_budget) +
         ",\"planned_target\":" + std::to_string(d.planned_target) +
         ",\"batch_id\":" + std::to_string(d.batch_id) +
         ",\"batch_size\":" + std::to_string(d.batch_size) +
         ",\"precision\":" + std::to_string(d.precision) +
         ",\"isa_tier\":" + std::to_string(d.isa_tier) +
         ",\"exit_level\":" + std::to_string(d.exit_level) +
         std::string(",\"halt_reason\":\"") + halt_reason_name(d.halt) +
         "\",\"missed\":" + (d.missed ? "true" : "false") +
         ",\"queue_ms\":" + fmt_double(d.queue_ms) +
         ",\"first_ms\":" + fmt_double(d.first_ms) +
         ",\"final_ms\":" + fmt_double(d.final_ms) + ",\"levels\":[";
  for (int l = 0; l < d.num_levels; ++l) {
    if (l) out += ",";
    out += "{\"level\":" + std::to_string(l + 1) +
           ",\"predicted_ms\":" + fmt_double(d.predicted_ms[l]) +
           ",\"actual_ms\":" + fmt_double(d.actual_ms[l]) +
           ",\"macs\":" + std::to_string(d.level_macs[l]) + "}";
  }
  out += "],\"events_dropped\":" + std::to_string(d.events_dropped) +
         ",\"timeline\":[";
  for (int i = 0; i < d.num_events; ++i) {
    if (i) out += ",";
    append_event_json(out, d.events[i]);
  }
  out += "]}";
}

}  // namespace

std::string FlightRecorder::postmortems_json() const {
  std::lock_guard<std::mutex> lock(retained_mu_);
  std::string out = "{\"flight\":{\"ring\":" + std::to_string(ring_.size()) +
                    ",\"records\":" + std::to_string(records()) +
                    ",\"drops\":" + std::to_string(ring_dropped()) +
                    ",\"event_drops\":" + std::to_string(events_dropped()) +
                    ",\"retained_misses\":" + std::to_string(misses_.size()) +
                    ",\"retained_stragglers\":" +
                    std::to_string(stragglers_.size()) +
                    "},\"postmortems\":[";
  bool first = true;
  for (const FlightData& d : misses_) {
    if (!first) out += ",";
    first = false;
    append_record_json(out, d, "deadline_miss");
  }
  for (const FlightData& d : stragglers_) {
    if (!first) out += ",";
    first = false;
    append_record_json(out, d, "straggler");
  }
  out += "]}";
  return out;
}

std::vector<FlightData> FlightRecorder::retained_misses() const {
  std::lock_guard<std::mutex> lock(retained_mu_);
  return std::vector<FlightData>(misses_.begin(), misses_.end());
}

std::vector<FlightData> FlightRecorder::retained_stragglers() const {
  std::lock_guard<std::mutex> lock(retained_mu_);
  return stragglers_;
}

}  // namespace stepping::obs
