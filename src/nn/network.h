// Sequential network container with subnet-aware wiring.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "nn/masked_layer.h"

namespace stepping {

/// A sequential feed-forward network.
///
/// Usage: emplace layers, then `wire(c, h, w, rng)` once to resolve shapes,
/// allocate parameters and propagate subnet assignments. The final
/// MaskedLayer is automatically marked as the classification head (exempt
/// from the structural rule, recomputed per subnet — DESIGN.md §3).
class Network {
 public:
  Network() = default;
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Construct and append a layer; returns a reference to it.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  /// Resolve shapes and subnet-assignment links for input (c, h, w) images.
  /// Idempotent for an unchanged topology; parameters allocated on first
  /// call are preserved on rewires (used by clone()).
  void wire(int in_c, int in_h, int in_w, Rng& rng);

  bool wired() const { return wired_; }
  int input_channels() const { return in_c_; }
  int input_h() const { return in_h_; }
  int input_w() const { return in_w_; }

  Tensor forward(const Tensor& x, const SubnetContext& ctx);

  /// Backward from dL/d(logits); returns dL/d(input).
  Tensor backward(const Tensor& grad_logits, const SubnetContext& ctx);

  std::vector<Param*> params();
  void zero_grads();

  const std::vector<std::unique_ptr<Layer>>& layers() const { return layers_; }
  std::vector<Layer*> layer_ptrs();

  /// All masked layers in order (including the head, flagged via is_head()).
  std::vector<MaskedLayer*> masked_layers();

  /// Masked layers excluding the head (the movable "body").
  std::vector<MaskedLayer*> body_layers();

  /// For body layer at body index i, the next masked layer consuming its
  /// units (possibly the head); nullptr only for a trailing body layer.
  MaskedLayer* consumer_of(const MaskedLayer* layer);

  /// Deep copy: clones layers and rewires assignment links. Requires wired().
  Network clone() const;

  /// Number of output classes (units of the final masked layer).
  int num_classes();

  // Subnet-wide helpers -----------------------------------------------------
  void reset_importance(int num_subnets);
  void prepare_lr_suppression(int num_subnets, double beta);
  void activate_lr_scale(int k);
  void clear_prune_masks();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  AssignmentPtr input_assign_;
  bool wired_ = false;
  int in_c_ = 0, in_h_ = 0, in_w_ = 0;
};

/// Calibrate activation ranges for int8 inference (ISSUE 7): run `inputs`
/// (rank-4, N x C x H x W) through the fp32 forward of every subnet level in
/// [1, max_level], in batches of `batch` images, recording each quantizable
/// layer's input range per (layer, level) into the returned table. The
/// forwards are ordinary fp32 passes — network outputs are unchanged.
std::shared_ptr<quant::CalibrationTable> calibrate_int8(Network& net,
                                                        const Tensor& inputs,
                                                        int batch,
                                                        int max_level);

}  // namespace stepping
