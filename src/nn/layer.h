// Layer interface and subnet-aware wiring metadata.
//
// SteppingNet semantics implemented here (DESIGN.md §6):
//  * every "unit" (a neuron in a fully-connected layer or a filter in a
//    convolutional layer, following the paper's terminology) carries a
//    subnet assignment s(unit) in {1..N}: the smallest subnet containing it;
//  * a synapse u -> v is structurally active iff s(u) <= s(v), which makes a
//    unit's input set identical in every subnet that contains it — the key
//    invariant behind exact computational reuse;
//  * assignments are shared (std::shared_ptr) along the layer graph so that
//    moving a neuron during construction is a single in-place mutation seen
//    by producer and consumers alike.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "quant/policy.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace stepping {

namespace quant {
class CalibrationTable;
}  // namespace quant

class Param;

/// Per-unit subnet ids, 1-based. Input image channels use 1 (present in the
/// smallest subnet by definition).
using Assignment = std::vector<int>;
using AssignmentPtr = std::shared_ptr<Assignment>;

/// Which subnet a forward/backward pass executes, plus mode flags.
struct SubnetContext {
  /// 1-based subnet index; units with s(unit) > subnet_id are masked out.
  int subnet_id = 1;
  /// Total number of subnets in the current construction (>= subnet_id).
  int num_subnets = 1;
  /// Training mode (BatchNorm batch statistics, importance harvesting).
  bool training = false;
  /// Accumulate |dL/dr_j| importance gradients (paper Eq. 2) during backward.
  bool harvest_importance = false;
  /// Numeric precision of this forward (ISSUE 7). Layers run int8 only for
  /// kInt8 at inference with a calibrated entry in `calibration`; anything
  /// else (including kAuto, which only the serve planner interprets) is the
  /// bitwise-deterministic fp32 path.
  quant::Precision precision = quant::Precision::kFp32;
  /// Activation scales for the int8 path, keyed (layer name, subnet level).
  /// Null => every layer falls back to fp32.
  const quant::CalibrationTable* calibration = nullptr;
  /// When non-null, this (fp32) forward is a calibration pass: quantizable
  /// layers record their input ranges here and still compute in fp32.
  quant::CalibrationTable* calib_record = nullptr;
};

/// Shape + subnet metadata flowing through Network::wire().
struct IOSpec {
  /// Number of units (channels for spatial tensors, features for flat ones).
  int units = 0;
  /// Scalars per unit presented to a downstream Dense layer (1 unless a
  /// Flatten collapsed an HxW plane into the feature axis).
  int features_per_unit = 1;
  /// Spatial extents; 0 when flat.
  int h = 0, w = 0;
  bool flat = false;
  /// Per-unit subnet assignment, shared with the producing layer.
  AssignmentPtr assignment;

  int total_features() const { return units * features_per_unit; }
};

/// Abstract layer with explicit forward/backward.
///
/// Lifecycle: construct with hyperparameters -> Network::wire() calls
/// wire(in, rng) exactly once per topology change (allocating parameters on
/// first wire, preserving them afterwards) -> forward/backward per batch.
class Layer {
 public:
  virtual ~Layer() = default;

  virtual std::string name() const = 0;

  /// Resolve shapes, allocate parameters (first call), capture the input
  /// assignment, and return the output spec.
  virtual IOSpec wire(const IOSpec& in, Rng& rng) = 0;

  virtual Tensor forward(const Tensor& x, const SubnetContext& ctx) = 0;

  /// True iff forward_relu() fuses the following ReLU into this layer's
  /// output store (bitwise identical to forward() followed by ReLU).
  /// Network::forward uses this to collapse Layer->ReLU pairs at inference.
  virtual bool can_fuse_relu() const { return false; }

  /// forward() with a fused trailing ReLU. Only meaningful when
  /// can_fuse_relu() returns true; the default falls back to plain forward
  /// (callers must then still apply the ReLU themselves).
  virtual Tensor forward_relu(const Tensor& x, const SubnetContext& ctx) {
    return forward(x, ctx);
  }

  /// True for the ReLU activation layer (fusion target detection).
  virtual bool is_relu() const { return false; }

  /// Consume dL/d(output), return dL/d(input), accumulate parameter grads.
  virtual Tensor backward(const Tensor& grad_y, const SubnetContext& ctx) = 0;

  /// Incremental step-up evaluation (inference only): given the full input
  /// `x` for subnet ctx.subnet_id and this layer's cached output `cached_y`
  /// from the already-evaluated subnet `from_subnet` (< ctx.subnet_id) on the
  /// same image, produce the output for ctx.subnet_id while reusing
  /// cached results where the reuse invariant guarantees equality.
  /// Default: plain recompute (correct for all layers).
  virtual Tensor forward_step(const Tensor& x, const Tensor& cached_y,
                              int from_subnet, const SubnetContext& ctx) {
    (void)cached_y;
    (void)from_subnet;
    return forward(x, ctx);
  }

  // ---- Streaming delta inference (ISSUE 10) ------------------------------
  // A temporal stream presents near-duplicate inputs frame after frame. The
  // stream executor (src/stream/) tracks which spatial rectangle of the
  // CURRENT layer input differs from the previous frame and threads it
  // through these hooks: propagate_dirty_region() maps an input-plane dirty
  // rect to the output positions it can influence, and forward_delta()
  // recomputes ONLY those positions, splicing them into the cached previous-
  // frame output. Every spliced tensor is exact (the untouched elements read
  // only clean input, so their cached bits are what a full pass would
  // produce), which is why the default forward_delta can simply run the full
  // forward: its input is already bitwise-identical to a cold pass's.

  /// Map a dirty region of this layer's input plane to the output region the
  /// dirty values can reach. Must be CONSERVATIVE (may over-approximate,
  /// never under-approximate). The default — the whole output plane — is
  /// correct for any layer; locality-preserving layers override:
  /// elementwise layers (ReLU, inference BatchNorm) propagate the region
  /// unchanged, pooling divides it by the pool size, convolutions expand it
  /// by the receptive-field halo (conv_dirty_out_region).
  virtual SpatialRegion propagate_dirty_region(const SpatialRegion& in) const {
    (void)in;
    const IOSpec& s = out_spec();
    return SpatialRegion::full(s.h, s.w);
  }

  /// True when forward_delta() actually saves compute for a sub-plane
  /// region (today: non-head Conv2d). Layers answering false still take
  /// part in streaming via propagate_dirty_region(); the executor just runs
  /// their plain forward on the (exact) spliced input.
  virtual bool supports_spatial_delta() const { return false; }

  /// Recompute only `out_region` of this layer's output for the new input
  /// `x`, reusing `cached_y` — the layer's full output for the PREVIOUS
  /// frame at the same subnet level — everywhere else. `out_region` must
  /// come from propagate_dirty_region() of the input's dirty rect, and the
  /// result must be bitwise identical to forward(x, ctx). Inference only.
  virtual Tensor forward_delta(const Tensor& x, const Tensor& cached_y,
                               const SpatialRegion& out_region,
                               const SubnetContext& ctx) {
    (void)cached_y;
    (void)out_region;
    return forward(x, ctx);
  }

  virtual std::vector<Param*> params() { return {}; }

  /// Precompute per-element learning-rate suppression buffers for training
  /// each subnet k (paper §III-A2: scale beta^(k-o) for params owned by a
  /// smaller subnet o). No-op for parameterless layers.
  virtual void prepare_lr_suppression(int num_subnets, double beta) {
    (void)num_subnets;
    (void)beta;
  }

  /// Select the suppression buffer for subnet k (k <= 0 disables).
  virtual void activate_lr_scale(int k) { (void)k; }

  /// Deep copy (fresh assignment storage); Network::wire() re-links inputs.
  virtual std::unique_ptr<Layer> clone() const = 0;

  /// Output spec recorded by Network::wire() (shape + governing assignment);
  /// consumers like the incremental executor use it to mask cached outputs.
  const IOSpec& out_spec() const { return out_spec_; }
  void set_out_spec(IOSpec spec) { out_spec_ = std::move(spec); }

 private:
  IOSpec out_spec_;
};

/// Zero all positions of `t` whose unit has s(unit) > subnet_id.
/// For rank-4 tensors a unit is a channel; for rank-2, a feature group of
/// `features_per_unit` consecutive columns.
void mask_inactive_units(Tensor& t, const Assignment& assignment,
                         int features_per_unit, int subnet_id);

}  // namespace stepping
