#include "nn/loss.h"

#include <cassert>
#include <cmath>

#include "tensor/ops.h"

namespace stepping {

namespace {

constexpr double kProbFloor = 1e-12;

int argmax_row(const float* row, int c) {
  int best = 0;
  for (int j = 1; j < c; ++j) {
    if (row[j] > row[best]) best = j;
  }
  return best;
}

}  // namespace

LossOutput softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels) {
  assert(logits.rank() == 2);
  const int n = logits.dim(0), c = logits.dim(1);
  assert(static_cast<int>(labels.size()) == n);

  LossOutput out;
  Tensor probs;
  softmax_rows(logits, probs);
  out.grad_logits = probs;  // start from p, subtract onehot below
  const float inv_n = 1.0f / static_cast<float>(n);
  float* g = out.grad_logits.data();
  const float* p = probs.data();
  for (int i = 0; i < n; ++i) {
    const int y = labels[static_cast<std::size_t>(i)];
    assert(y >= 0 && y < c);
    const std::int64_t base = static_cast<std::int64_t>(i) * c;
    out.loss -= std::log(std::max(static_cast<double>(p[base + y]), kProbFloor));
    g[base + y] -= 1.0f;
    for (int j = 0; j < c; ++j) g[base + j] *= inv_n;
    if (argmax_row(p + base, c) == y) ++out.correct;
  }
  out.loss /= n;
  return out;
}

LossOutput distillation_loss(const Tensor& logits,
                             const std::vector<int>& labels,
                             const Tensor& teacher_probs, double gamma) {
  assert(logits.rank() == 2 && teacher_probs.shape() == logits.shape());
  const int n = logits.dim(0), c = logits.dim(1);
  assert(static_cast<int>(labels.size()) == n);

  LossOutput out;
  Tensor probs;
  softmax_rows(logits, probs);
  out.grad_logits = Tensor(logits.shape());

  const float inv_n = 1.0f / static_cast<float>(n);
  const float fg = static_cast<float>(gamma);
  float* g = out.grad_logits.data();
  const float* p = probs.data();
  const float* pt = teacher_probs.data();
  double ce = 0.0, kl = 0.0;
  for (int i = 0; i < n; ++i) {
    const int y = labels[static_cast<std::size_t>(i)];
    assert(y >= 0 && y < c);
    const std::int64_t base = static_cast<std::int64_t>(i) * c;
    ce -= std::log(std::max(static_cast<double>(p[base + y]), kProbFloor));
    for (int j = 0; j < c; ++j) {
      const double ps = std::max(static_cast<double>(p[base + j]), kProbFloor);
      const double pte = static_cast<double>(pt[base + j]);
      if (pte > 0.0) kl += pte * std::log(pte / ps);
      const float onehot = (j == y) ? 1.0f : 0.0f;
      g[base + j] = (fg * (p[base + j] - onehot) +
                     (1.0f - fg) * (p[base + j] - pt[base + j])) *
                    inv_n;
    }
    if (argmax_row(p + base, c) == y) ++out.correct;
  }
  out.loss = gamma * (ce / n) + (1.0 - gamma) * (kl / n);
  return out;
}

}  // namespace stepping
