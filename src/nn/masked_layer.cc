#include "nn/masked_layer.h"

#include <cassert>
#include <cmath>
#include <cstring>

#include "tensor/gemm_kernel.h"
#include "tensor/ops.h"

namespace stepping {

MaskedLayer::MaskedLayer() : out_assign_(std::make_shared<Assignment>()) {}

MaskedLayer::MaskedLayer(const MaskedLayer& other)
    : Layer(other),
      units_(other.units_),
      cols_(other.cols_),
      col_group_(other.col_group_),
      macs_per_weight_(other.macs_per_weight_),
      is_head_(other.is_head_),
      weight_(other.weight_),
      bias_(other.bias_),
      out_assign_(std::make_shared<Assignment>(*other.out_assign_)),
      in_assign_(other.in_assign_),  // re-linked by Network::wire()
      prune_mask_(other.prune_mask_),
      w_eff_(other.w_eff_),
      weights_dirty_(true),
      imp_acc_(other.imp_acc_) {
  // LR-scale caches point into the layer; rebuild on demand in the clone.
  weight_.elem_lr_scale = nullptr;
  bias_.elem_lr_scale = nullptr;
}

void MaskedLayer::init_structure(int units, int cols, int col_group,
                                 std::int64_t macs_per_weight,
                                 AssignmentPtr in_assign, Rng& rng, int fan_in) {
  assert(units > 0 && cols > 0 && col_group > 0);
  const bool first_wire = (units_ == 0);
  units_ = units;
  cols_ = cols;
  col_group_ = col_group;
  macs_per_weight_ = macs_per_weight;
  in_assign_ = std::move(in_assign);
  if (first_wire) {
    out_assign_->assign(static_cast<std::size_t>(units), 1);
    prune_mask_.assign(static_cast<std::size_t>(units) * cols, 1);
    weight_.value = Tensor({units, cols});
    fill_kaiming_normal(weight_.value, fan_in, rng);
    weight_.apply_decay = true;
    bias_.value = Tensor({units});
    bias_.apply_decay = false;
    reset_importance(1);
  } else {
    // Re-wire (e.g. after clone): shapes must match.
    assert(weight_.value.dim(0) == units && weight_.value.dim(1) == cols);
  }
  weights_dirty_ = true;
}

void MaskedLayer::set_unit_subnet(int unit, int subnet) {
  assert(unit >= 0 && unit < units_ && subnet >= 1);
  (*out_assign_)[static_cast<std::size_t>(unit)] = subnet;
  weights_dirty_ = true;
}

bool MaskedLayer::structurally_active(int unit, int col) const {
  if (is_head_) return true;
  const int su = (*in_assign_)[static_cast<std::size_t>(in_unit_of(unit, col))];
  const int sv = (*out_assign_)[static_cast<std::size_t>(unit)];
  return su <= sv;
}

void MaskedLayer::apply_magnitude_prune(float threshold) {
  const float* w = weight_.value.data();
  const std::size_t n = prune_mask_.size();
  for (std::size_t i = 0; i < n; ++i) {
    prune_mask_[i] = std::fabs(w[i]) >= threshold ? 1 : 0;
  }
  weights_dirty_ = true;
}

void MaskedLayer::revive_unit_row(int unit) {
  assert(unit >= 0 && unit < units_);
  std::memset(prune_mask_.data() + static_cast<std::size_t>(unit) * cols_, 1,
              static_cast<std::size_t>(cols_));
  weights_dirty_ = true;
}

void MaskedLayer::revive_in_unit_cols(int in_unit) {
  const int lo = in_unit * col_group_;
  const int hi = lo + col_group_;
  assert(lo >= 0 && hi <= cols_);
  for (int u = 0; u < units_; ++u) {
    std::uint8_t* row = prune_mask_.data() + static_cast<std::size_t>(u) * cols_;
    std::memset(row + lo, 1, static_cast<std::size_t>(hi - lo));
  }
  weights_dirty_ = true;
}

void MaskedLayer::clear_prune_mask() {
  std::fill(prune_mask_.begin(), prune_mask_.end(), std::uint8_t{1});
  weights_dirty_ = true;
}

void MaskedLayer::set_prune_mask(const std::vector<std::uint8_t>& mask) {
  assert(mask.size() == prune_mask_.size());
  prune_mask_ = mask;
  weights_dirty_ = true;
}

std::int64_t MaskedLayer::active_weights(int subnet_id) const {
  std::int64_t count = 0;
  for (int u = 0; u < units_; ++u) {
    const int sv = is_head_ ? 1 : (*out_assign_)[static_cast<std::size_t>(u)];
    if (sv > subnet_id) continue;
    const std::uint8_t* prow =
        prune_mask_.data() + static_cast<std::size_t>(u) * cols_;
    for (int c = 0; c < cols_; ++c) {
      if (!prow[c]) continue;
      const int su = (*in_assign_)[static_cast<std::size_t>(in_unit_of(u, c))];
      if (su > subnet_id) continue;          // producer absent from this subnet
      if (!is_head_ && su > sv) continue;    // structural rule
      ++count;
    }
  }
  return count;
}

std::int64_t MaskedLayer::move_delta_macs(int unit,
                                          const MaskedLayer* consumer) const {
  const int sv = (*out_assign_)[static_cast<std::size_t>(unit)];
  std::int64_t removed = 0;
  // Incoming synapses leave subnet sv together with the unit.
  const std::uint8_t* prow =
      prune_mask_.data() + static_cast<std::size_t>(unit) * cols_;
  for (int c = 0; c < cols_; ++c) {
    if (!prow[c]) continue;
    const int su = (*in_assign_)[static_cast<std::size_t>(in_unit_of(unit, c))];
    if (su <= sv) removed += macs_per_weight_;
  }
  // Outgoing synapses into consumer units that stay in subnets <= sv become
  // structurally inactive; head consumers always read every active producer,
  // so the head loses this unit's columns from subnet sv (it regains them in
  // subnet sv+1).
  if (consumer != nullptr) {
    for (int v = 0; v < consumer->num_units(); ++v) {
      if (!consumer->is_head()) {
        // Only synapses into units of exactly subnet sv were active in
        // subnet sv before the move (s(u) <= s(w) <= sv forces s(w) == sv);
        // synapses into smaller subnets were already blocked structurally.
        const int s_cons = consumer->unit_subnet()[static_cast<std::size_t>(v)];
        if (s_cons != sv) continue;
      }
      const std::uint8_t* crow =
          consumer->prune_mask().data() +
          static_cast<std::size_t>(v) * consumer->num_cols();
      for (int c = 0; c < consumer->num_cols(); ++c) {
        if (consumer->in_unit_of(v, c) != unit) continue;
        if (crow[c]) removed += consumer->macs_per_weight();
      }
    }
  }
  return removed;
}

void MaskedLayer::reset_importance(int num_subnets) {
  imp_acc_.assign(static_cast<std::size_t>(num_subnets),
                  std::vector<double>(static_cast<std::size_t>(units_), 0.0));
}

void MaskedLayer::prepare_lr_suppression(int num_subnets, double beta) {
  lr_scale_.assign(static_cast<std::size_t>(num_subnets), {});
  bias_lr_scale_.assign(static_cast<std::size_t>(num_subnets), {});
  for (int k = 1; k <= num_subnets; ++k) {
    auto& ws = lr_scale_[static_cast<std::size_t>(k - 1)];
    auto& bs = bias_lr_scale_[static_cast<std::size_t>(k - 1)];
    ws.assign(static_cast<std::size_t>(units_) * cols_, 1.0f);
    bs.assign(static_cast<std::size_t>(units_), 1.0f);
    for (int u = 0; u < units_; ++u) {
      const int s_out = is_head_ ? 1 : (*out_assign_)[static_cast<std::size_t>(u)];
      if (!is_head_) {
        const float row_scale =
            s_out < k ? static_cast<float>(std::pow(beta, k - s_out)) : 1.0f;
        bs[static_cast<std::size_t>(u)] = row_scale;
        float* wrow = ws.data() + static_cast<std::size_t>(u) * cols_;
        for (int c = 0; c < cols_; ++c) wrow[c] = row_scale;
      } else {
        // Head weights are owned by the subnet of their input unit.
        float* wrow = ws.data() + static_cast<std::size_t>(u) * cols_;
        for (int c = 0; c < cols_; ++c) {
          const int su =
              (*in_assign_)[static_cast<std::size_t>(in_unit_of(u, c))];
          wrow[c] = su < k ? static_cast<float>(std::pow(beta, k - su)) : 1.0f;
        }
      }
    }
  }
}

void MaskedLayer::activate_lr_scale(int k) {
  if (k <= 0 || lr_scale_.empty()) {
    weight_.elem_lr_scale = nullptr;
    bias_.elem_lr_scale = nullptr;
    return;
  }
  assert(k <= static_cast<int>(lr_scale_.size()));
  weight_.elem_lr_scale = &lr_scale_[static_cast<std::size_t>(k - 1)];
  bias_.elem_lr_scale = &bias_lr_scale_[static_cast<std::size_t>(k - 1)];
}

const Tensor& MaskedLayer::effective_weights() {
  // Recomputed on every call: weight values change on every optimizer step
  // and masks change during construction, and neither path can be trusted to
  // invalidate a cache; one masked copy per forward is cheap at these sizes.
  //
  // The pack-cache identity, by contrast, must only change when the bytes
  // do: while rewriting we bit-compare old vs new (memcpy through uint32 so
  // ±0 and NaN payloads count as changes — exactly what a packed-byte cache
  // cares about) and draw a fresh pack_id when anything differed. (The ISA
  // tier is NOT part of this identity — panel layout varies with the tier's
  // NR, so the pack cache folds the active tier into its own key and
  // flushes on set_isa_tier; pack_id only names the weight bytes.) The
  // per-Param version counter (SGD::step, deserialization) and the dirty
  // flag are folded in as belt-and-braces for writers that mutate the value
  // tensor in place without changing any bit we could see mid-race.
  const bool shape_change = w_eff_.shape() != weight_.value.shape();
  if (shape_change) w_eff_ = Tensor(weight_.value.shape());
  const float* w = weight_.value.data();
  float* we = w_eff_.data();
  std::uint32_t diff = 0;
  for (int u = 0; u < units_; ++u) {
    const std::size_t base = static_cast<std::size_t>(u) * cols_;
    for (int c = 0; c < cols_; ++c) {
      const bool keep = prune_mask_[base + c] && structurally_active(u, c);
      const float nv = keep ? w[base + c] : 0.0f;
      std::uint32_t ob, nb;
      std::memcpy(&ob, &we[base + c], sizeof ob);
      std::memcpy(&nb, &nv, sizeof nb);
      diff |= ob ^ nb;
      we[base + c] = nv;
    }
  }
  if (shape_change || diff != 0 || pack_id_ == 0 ||
      seen_weight_version_ != weight_.version) {
    pack_id_ = new_pack_id();
  }
  seen_weight_version_ = weight_.version;
  weights_dirty_ = false;
  return w_eff_;
}

const std::vector<std::uint8_t>& MaskedLayer::active_flags(int subnet_id) {
  active_flags_.assign(static_cast<std::size_t>(units_), 1);
  if (!is_head_) {
    for (int u = 0; u < units_; ++u) {
      if ((*out_assign_)[static_cast<std::size_t>(u)] > subnet_id) {
        active_flags_[static_cast<std::size_t>(u)] = 0;
      }
    }
  }
  return active_flags_;
}

void MaskedLayer::mask_inactive_grad_rows(Tensor& grad, int per_unit,
                                          const SubnetContext& ctx) const {
  if (is_head_) return;
  mask_inactive_units(grad, *out_assign_, per_unit, ctx.subnet_id);
}

void MaskedLayer::harvest_importance(const Tensor& grad_preact,
                                     const Tensor& preact,
                                     const SubnetContext& ctx, int per_unit) {
  const int k = ctx.subnet_id;
  if (k < 1 || k > static_cast<int>(imp_acc_.size())) return;
  auto& acc = imp_acc_[static_cast<std::size_t>(k - 1)];
  const std::int64_t n = grad_preact.numel();
  assert(preact.numel() == n);
  const std::int64_t batch_stride = static_cast<std::int64_t>(units_) * per_unit;
  const std::int64_t batches = n / batch_stride;
  const float* g = grad_preact.data();
  const float* p = preact.data();
  const float* b = bias_.value.data();
  for (int u = 0; u < units_; ++u) {
    const int sv = is_head_ ? 1 : (*out_assign_)[static_cast<std::size_t>(u)];
    if (sv > k) continue;
    double dldr = 0.0;
    const float bu = b[u];
    for (std::int64_t bi = 0; bi < batches; ++bi) {
      const std::int64_t base =
          bi * batch_stride + static_cast<std::int64_t>(u) * per_unit;
      for (int i = 0; i < per_unit; ++i) {
        dldr += static_cast<double>(g[base + i]) *
                (static_cast<double>(p[base + i]) - bu);
      }
    }
    acc[static_cast<std::size_t>(u)] += std::fabs(dldr);
  }
}

// Free function from layer.h.
void mask_inactive_units(Tensor& t, const Assignment& assignment,
                         int features_per_unit, int subnet_id) {
  const int units = static_cast<int>(assignment.size());
  if (units == 0) return;
  const std::int64_t per_unit =
      t.rank() == 4
          ? static_cast<std::int64_t>(t.dim(2)) * t.dim(3) * features_per_unit
          : features_per_unit;
  const std::int64_t unit_stride = per_unit;
  const std::int64_t batch_stride = unit_stride * units;
  const std::int64_t batches = t.numel() / batch_stride;
  assert(batches * batch_stride == t.numel());
  float* p = t.data();
  for (int u = 0; u < units; ++u) {
    if (assignment[static_cast<std::size_t>(u)] <= subnet_id) continue;
    for (std::int64_t b = 0; b < batches; ++b) {
      float* dst = p + b * batch_stride + static_cast<std::int64_t>(u) * unit_stride;
      std::memset(dst, 0, sizeof(float) * static_cast<std::size_t>(per_unit));
    }
  }
}

}  // namespace stepping
