#include "nn/conv2d.h"

#include <cassert>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "quant/calibration.h"
#include "quant/prepared.h"
#include "tensor/gemm_kernel.h"
#include "util/arena.h"

namespace stepping {

Conv2d::Conv2d(std::string name, int out_channels, int kernel, int stride,
               int pad)
    : name_(std::move(name)),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad < 0 ? kernel / 2 : pad) {
  if (out_channels <= 0 || kernel <= 0 || stride <= 0) {
    throw std::invalid_argument("Conv2d: bad hyperparameters");
  }
}

IOSpec Conv2d::wire(const IOSpec& in, Rng& rng) {
  if (in.flat) throw std::invalid_argument(name_ + ": Conv2d needs spatial input");
  geom_ = Conv2dGeometry{in.units, in.h, in.w, out_channels_, kernel_, stride_,
                         pad_};
  if (geom_.out_h() <= 0 || geom_.out_w() <= 0) {
    throw std::invalid_argument(name_ + ": output collapses to zero size");
  }
  const int patch = geom_.patch();
  init_structure(out_channels_, patch, kernel_ * kernel_,
                 static_cast<std::int64_t>(geom_.out_h()) * geom_.out_w(),
                 in.assignment, rng, patch);
  IOSpec out;
  out.units = out_channels_;
  out.features_per_unit = 1;
  out.h = geom_.out_h();
  out.w = geom_.out_w();
  out.flat = false;
  out.assignment = out_assign_;
  return out;
}

Tensor Conv2d::forward(const Tensor& x, const SubnetContext& ctx) {
  return forward_impl(x, ctx, /*relu=*/false);
}

Tensor Conv2d::forward_relu(const Tensor& x, const SubnetContext& ctx) {
  assert(!ctx.training);  // fusion is inference-only (backward needs preact)
  return forward_impl(x, ctx, /*relu=*/true);
}

Tensor Conv2d::forward_impl(const Tensor& x, const SubnetContext& ctx,
                            bool relu) {
  assert(x.rank() == 4 && x.dim(1) == geom_.in_c);
  const int n = x.dim(0);
  const int oh = geom_.out_h(), ow = geom_.out_w();
  const int spatial = oh * ow;
  const Tensor& w = effective_weights();
  const auto& active = active_flags(ctx.subnet_id);

  if (ctx.calib_record != nullptr && !ctx.training) {
    // im2col only replicates/zero-pads input values, and 0 quantizes exactly
    // to the zero point, so calibrating on x covers the column matrix too.
    ctx.calib_record->record(name_, ctx.subnet_id, x.data(),
                             static_cast<std::size_t>(x.numel()));
  }

  // Int8 rung (ISSUE 7): see Dense::forward_impl. Resolved once per batch;
  // non-null => every image below runs the u8 x i8 provider.
  const quant::CalibEntry* calib = nullptr;
  if (ctx.precision == quant::Precision::kInt8 && !ctx.training && !is_head_ &&
      ctx.calibration != nullptr) {
    calib = ctx.calibration->find(name_, ctx.subnet_id);
  }

  Tensor y({n, units_, oh, ow});  // zero-filled; inactive units stay zero
  // Workspaces come from the per-thread arena: reused across calls (zero
  // heap allocations once warmed up — asserted by the conv arena test).
  ArenaScope ws;
  const std::int64_t patch = geom_.patch();
  float* cols = ws.alloc_floats(static_cast<std::size_t>(patch) * spatial);
  const std::int64_t in_img = static_cast<std::int64_t>(geom_.in_c) * geom_.in_h *
                              geom_.in_w;
  const std::int64_t out_img = static_cast<std::int64_t>(units_) * spatial;
  if (calib != nullptr) {
    const quant::PreparedInt8 pw = quant::prepare_int8_weights(
        pack_id(), w.data(), units_, static_cast<int>(patch));
    const quant::ActQuant aq = ctx.calibration->params(*calib);
    for (int i = 0; i < n; ++i) {
      im2col(x.data() + i * in_img, geom_, cols);
      quant::int8_conv_forward(cols, spatial, pw, aq, active.data(),
                               bias_.value.data(), relu,
                               y.data() + i * out_img);
    }
    return y;
  }
  for (int i = 0; i < n; ++i) {
    im2col(x.data() + i * in_img, geom_, cols);
    // y_i (U x S) = w (U x P) * cols (P x S) + bias, active rows only, with
    // the bias add (and optional ReLU) fused into the micro-kernel store —
    // results land straight in y, skipping the former yi staging buffer and
    // its copy-out pass.
    gemm_rows_bias(w.data(), cols, y.data() + i * out_img, units_,
                   static_cast<int>(patch), spatial, active.data(),
                   bias_.value.data(), relu);
  }

  if (ctx.training) {
    x_cache_ = x;
    preact_cache_ = y;  // Eq. 2 harvesting (inactive units zero, skipped)
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_y_in, const SubnetContext& ctx) {
  Tensor grad_y = grad_y_in;
  const int n = grad_y.dim(0);
  const int oh = geom_.out_h(), ow = geom_.out_w();
  const int spatial = oh * ow;
  if (!is_head_) mask_inactive_units(grad_y, *out_assign_, 1, ctx.subnet_id);

  if (ctx.harvest_importance) {
    harvest_importance(grad_y, preact_cache_, ctx, spatial);
  }

  if (weight_.grad.shape() != weight_.value.shape()) weight_.zero_grad();
  if (bias_.grad.shape() != bias_.value.shape()) bias_.zero_grad();

  const Tensor& w = effective_weights();
  const auto& active = active_flags(ctx.subnet_id);
  Tensor grad_x(x_cache_.shape());
  ArenaScope ws;
  const std::int64_t patch = geom_.patch();
  float* cols = ws.alloc_floats(static_cast<std::size_t>(patch) * spatial);
  float* dcols = ws.alloc_floats(static_cast<std::size_t>(patch) * spatial);
  const std::int64_t in_img = static_cast<std::int64_t>(geom_.in_c) * geom_.in_h *
                              geom_.in_w;
  const std::int64_t out_img = static_cast<std::int64_t>(units_) * spatial;

  for (int i = 0; i < n; ++i) {
    im2col(x_cache_.data() + i * in_img, geom_, cols);
    // gi (U x S) is image i's slice of grad_y, read in place (the former
    // per-image Tensor copy is gone).
    const float* gi = grad_y.data() + i * out_img;
    // dW (U x P) += gi (U x S) * cols^T (S x P), active units only (grads of
    // inactive units are identically zero).
    gemm_nt_rows_acc(gi, cols, weight_.grad.data(), units_, spatial,
                     static_cast<int>(patch), active.data());
    // db += row sums of gi
    float* db = bias_.grad.data();
    for (int u = 0; u < units_; ++u) {
      if (!active[static_cast<std::size_t>(u)]) continue;
      float acc = 0.0f;
      for (int s = 0; s < spatial; ++s)
        acc += gi[static_cast<std::int64_t>(u) * spatial + s];
      db[u] += acc;
    }
    // dcols (P x S) = w^T (P x U) * gi (U x S), skipping inactive units.
    gemm_tn_rows(w.data(), gi, dcols, static_cast<int>(patch), units_, spatial,
                 active.data());
    col2im(dcols, geom_, grad_x.data() + i * in_img);
  }
  return grad_x;
}

Tensor Conv2d::forward_delta(const Tensor& x, const Tensor& cached_y,
                             const SpatialRegion& out_region,
                             const SubnetContext& ctx) {
  assert(!ctx.training);
  // Fall back to a full pass whenever the cached plane cannot be spliced
  // into: no cache, head semantics, int8 precision (delta reuse is an fp32
  // bitwise property, like incremental step-up), a degenerate region, or a
  // region that already covers the plane.
  const int oh = geom_.out_h(), ow = geom_.out_w();
  const SpatialRegion reg = out_region.clipped(oh, ow);
  const bool int8_pass = ctx.precision == quant::Precision::kInt8 &&
                         ctx.calibration != nullptr;
  if (cached_y.empty() || is_head_ || int8_pass || ctx.calib_record != nullptr ||
      reg.covers(oh, ow)) {
    return forward(x, ctx);
  }
  assert(x.rank() == 4 && x.dim(1) == geom_.in_c &&
         cached_y.shape() == std::vector<int>({x.dim(0), units_, oh, ow}));
  Tensor y = cached_y;  // splice target: clean positions keep frame t's bits
  if (reg.empty()) return y;  // nothing dirty reaches this layer
  const int n = x.dim(0);
  const Tensor& w = effective_weights();
  const auto& active = active_flags(ctx.subnet_id);
  const int rw = reg.width();
  const std::int64_t area = reg.area();
  ArenaScope ws;
  const std::int64_t patch = geom_.patch();
  float* cols = ws.alloc_floats(static_cast<std::size_t>(patch) * area);
  float* part = ws.alloc_floats(static_cast<std::size_t>(units_) * area);
  const std::int64_t in_img = static_cast<std::int64_t>(geom_.in_c) * geom_.in_h *
                              geom_.in_w;
  const std::int64_t out_img = static_cast<std::int64_t>(units_) * oh * ow;
  for (int i = 0; i < n; ++i) {
    // Lower only the dirty output positions; the resulting columns are
    // byte-identical to the corresponding columns of the full im2col, and
    // each GEMM output element's FP sequence depends only on its own column
    // (tensor/gemm_kernel.h), so `part` carries exactly the bits a full
    // forward would put at those positions.
    im2col_region(x.data() + i * in_img, geom_, reg, cols);
    // The kernel accumulates into C (the full path hands it a zero-filled
    // tensor); arena scratch must be zeroed the same way each image.
    std::memset(part, 0,
                sizeof(float) * static_cast<std::size_t>(units_) * area);
    gemm_rows_bias(w.data(), cols, part, units_, static_cast<int>(patch),
                   static_cast<int>(area), active.data(), bias_.value.data(),
                   /*relu=*/false);
    float* yi = y.data() + i * out_img;
    for (int u = 0; u < units_; ++u) {
      if (!active[static_cast<std::size_t>(u)]) continue;  // stays zero
      const float* prow = part + static_cast<std::size_t>(u) * area;
      float* plane = yi + static_cast<std::int64_t>(u) * oh * ow;
      for (int r = reg.r0; r < reg.r1; ++r) {
        std::memcpy(plane + static_cast<std::size_t>(r) * ow + reg.c0,
                    prow + static_cast<std::size_t>(r - reg.r0) * rw,
                    sizeof(float) * static_cast<std::size_t>(rw));
      }
    }
  }
  return y;
}

Tensor Conv2d::forward_step(const Tensor& x, const Tensor& cached_y,
                            int from_subnet, const SubnetContext& ctx) {
  assert(!ctx.training);
  // A head recomputes every unit, which is exactly forward().
  if (cached_y.empty() || is_head_) return forward(x, ctx);
  const int n = x.dim(0);
  const int spatial = geom_.out_h() * geom_.out_w();
  const Tensor& w = effective_weights();
  Tensor y = cached_y;  // reuse results of units evaluated at from_subnet

  // Evaluate only the units joining in (from_subnet, subnet_id], through the
  // SAME dispatcher forward() uses, so step-up follows the active ISA tier's
  // multiply-add semantics and stays bit-identical to a from-scratch
  // evaluation. Joining units are zero in cached_y (masked when it was
  // produced), so the kernel's accumulate-into-C is an overwrite for them;
  // reused units are skipped untouched.
  std::vector<unsigned char> fresh(static_cast<std::size_t>(units_), 0);
  for (int u = 0; u < units_; ++u) {
    const int sv = (*out_assign_)[static_cast<std::size_t>(u)];
    if (sv > from_subnet && sv <= ctx.subnet_id) fresh[static_cast<std::size_t>(u)] = 1;
  }

  ArenaScope ws;
  const std::int64_t patch = geom_.patch();
  float* cols = ws.alloc_floats(static_cast<std::size_t>(patch) * spatial);
  const std::int64_t in_img = static_cast<std::int64_t>(geom_.in_c) * geom_.in_h *
                              geom_.in_w;
  const std::int64_t out_img = static_cast<std::int64_t>(units_) * spatial;
  for (int i = 0; i < n; ++i) {
    im2col(x.data() + i * in_img, geom_, cols);
    gemm_rows_bias(w.data(), cols, y.data() + i * out_img, units_,
                   static_cast<int>(patch), spatial, fresh.data(),
                   bias_.value.data(), /*relu=*/false);
  }
  mask_inactive_units(y, *out_assign_, 1, ctx.subnet_id);
  return y;
}

}  // namespace stepping
