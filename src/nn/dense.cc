#include "nn/dense.h"

#include <cassert>
#include <stdexcept>
#include <vector>

#include "quant/calibration.h"
#include "quant/prepared.h"
#include "tensor/ops.h"

namespace stepping {

Dense::Dense(std::string name, int out_features)
    : name_(std::move(name)), out_features_(out_features) {
  if (out_features <= 0) throw std::invalid_argument("Dense: bad out_features");
}

IOSpec Dense::wire(const IOSpec& in, Rng& rng) {
  if (!in.flat) {
    throw std::invalid_argument(name_ + ": Dense needs flat input (add Flatten)");
  }
  const int in_features = in.total_features();
  init_structure(out_features_, in_features, in.features_per_unit,
                 /*macs_per_weight=*/1, in.assignment, rng, in_features);
  IOSpec out;
  out.units = out_features_;
  out.features_per_unit = 1;
  out.flat = true;
  out.assignment = out_assign_;
  return out;
}

Tensor Dense::forward(const Tensor& x, const SubnetContext& ctx) {
  return forward_impl(x, ctx, /*relu=*/false);
}

Tensor Dense::forward_relu(const Tensor& x, const SubnetContext& ctx) {
  assert(!ctx.training);  // fusion is inference-only (backward needs preact)
  return forward_impl(x, ctx, /*relu=*/true);
}

Tensor Dense::forward_impl(const Tensor& x, const SubnetContext& ctx,
                           bool relu) {
  assert(x.rank() == 2 && x.dim(1) == cols_);
  const int n = x.dim(0);
  const Tensor& w = effective_weights();
  const auto& active = active_flags(ctx.subnet_id);

  if (ctx.calib_record != nullptr && !ctx.training) {
    ctx.calib_record->record(name_, ctx.subnet_id, x.data(),
                             static_cast<std::size_t>(x.numel()));
  }

  Tensor y({n, units_});  // zero-filled; inactive units stay zero

  // Int8 rung (ISSUE 7): body layers with a calibrated input range run the
  // u8 x i8 providers; heads stay fp32 (logits feed confidence gates), as
  // does any (layer, level) pair calibration never saw.
  if (ctx.precision == quant::Precision::kInt8 && !ctx.training && !is_head_ &&
      ctx.calibration != nullptr) {
    if (const quant::CalibEntry* e =
            ctx.calibration->find(name_, ctx.subnet_id)) {
      const quant::PreparedInt8 pw =
          quant::prepare_int8_weights(pack_id(), w.data(), units_, cols_);
      quant::int8_dense_forward(x.data(), n, pw, ctx.calibration->params(*e),
                                active.data(), bias_.value.data(), relu,
                                y.data());
      return y;
    }
  }

  // y (N x U) = x (N x F) * w^T, bias (and optionally ReLU) fused into the
  // micro-kernel store. Training passes pack_id 0: weights change every step,
  // so caching their packed panels would only thrash the cache.
  gemm_nt_cols_bias(x, w, y, active.data(), bias_.value.data(), relu,
                    ctx.training ? 0 : pack_id());

  if (ctx.training) {
    x_cache_ = x;
    preact_cache_ = y;
  }
  return y;
}

Tensor Dense::backward(const Tensor& grad_y_in, const SubnetContext& ctx) {
  Tensor grad_y = grad_y_in;
  if (!is_head_) mask_inactive_units(grad_y, *out_assign_, 1, ctx.subnet_id);

  if (ctx.harvest_importance) {
    harvest_importance(grad_y, preact_cache_, ctx, /*per_unit=*/1);
  }

  if (weight_.grad.shape() != weight_.value.shape()) weight_.zero_grad();
  if (bias_.grad.shape() != bias_.value.shape()) bias_.zero_grad();

  const int n = grad_y.dim(0);
  // dW (U x F) += grad^T (U x N) * x (N x F)
  gemm_tn(grad_y, x_cache_, weight_.grad, /*accumulate=*/true);
  // db += column sums of grad
  float* db = bias_.grad.data();
  const float* g = grad_y.data();
  for (int i = 0; i < n; ++i) {
    for (int u = 0; u < units_; ++u) db[u] += g[static_cast<std::int64_t>(i) * units_ + u];
  }
  // dx (N x F) = grad (N x U) * w (U x F)
  const Tensor& w = effective_weights();
  Tensor grad_x({n, cols_});
  gemm(grad_y, w, grad_x);
  return grad_x;
}

Tensor Dense::forward_step(const Tensor& x, const Tensor& cached_y,
                           int from_subnet, const SubnetContext& ctx) {
  assert(!ctx.training);
  // A head recomputes every unit, which is exactly forward().
  if (cached_y.empty() || is_head_) return forward(x, ctx);
  const Tensor& w = effective_weights();
  Tensor y = cached_y;
  // Evaluate only the units joining in (from_subnet, subnet_id], through the
  // SAME dispatcher forward() uses: whatever multiply-add semantics the
  // active ISA tier has, step-up sees the identical per-element operation
  // sequence, so results stay bit-identical to a from-scratch evaluation.
  // Joining units are zero in cached_y (masked when it was produced), so
  // the kernel's accumulate-into-C is an overwrite for them; reused units
  // are skipped untouched.
  std::vector<unsigned char> fresh(static_cast<std::size_t>(units_), 0);
  for (int u = 0; u < units_; ++u) {
    const int sv = (*out_assign_)[static_cast<std::size_t>(u)];
    if (sv > from_subnet && sv <= ctx.subnet_id) fresh[static_cast<std::size_t>(u)] = 1;
  }
  gemm_nt_cols_bias(x, w, y, fresh.data(), bias_.value.data(), /*relu=*/false,
                    pack_id());
  mask_inactive_units(y, *out_assign_, 1, ctx.subnet_id);
  return y;
}

}  // namespace stepping
