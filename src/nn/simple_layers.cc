#include "nn/simple_layers.h"

#include <cassert>
#include <stdexcept>

#include "tensor/ops.h"

namespace stepping {

// ---------------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------------

IOSpec ReLU::wire(const IOSpec& in, Rng& rng) {
  (void)rng;
  return in;
}

Tensor ReLU::forward(const Tensor& x, const SubnetContext& ctx) {
  Tensor y;
  if (ctx.training) {
    relu_forward(x, y, mask_);
  } else {
    std::vector<unsigned char> scratch;
    relu_forward(x, y, scratch);
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_y, const SubnetContext& ctx) {
  (void)ctx;
  Tensor grad_x;
  relu_backward(grad_y, mask_, grad_x);
  return grad_x;
}

// ---------------------------------------------------------------------------
// MaxPool2d
// ---------------------------------------------------------------------------

IOSpec MaxPool2d::wire(const IOSpec& in, Rng& rng) {
  (void)rng;
  if (in.flat) throw std::invalid_argument(name_ + ": MaxPool2d needs NCHW");
  if (in.h % k_ != 0 || in.w % k_ != 0) {
    throw std::invalid_argument(name_ + ": extent not divisible by pool size");
  }
  IOSpec out = in;
  out.h = in.h / k_;
  out.w = in.w / k_;
  return out;
}

Tensor MaxPool2d::forward(const Tensor& x, const SubnetContext& ctx) {
  (void)ctx;
  in_shape_ = x.shape();
  Tensor y;
  maxpool_forward(x, k_, y, argmax_);
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_y, const SubnetContext& ctx) {
  (void)ctx;
  Tensor grad_x(in_shape_);
  maxpool_backward(grad_y, argmax_, grad_x);
  return grad_x;
}

// ---------------------------------------------------------------------------
// Flatten
// ---------------------------------------------------------------------------

IOSpec Flatten::wire(const IOSpec& in, Rng& rng) {
  (void)rng;
  if (in.flat) throw std::invalid_argument(name_ + ": input already flat");
  IOSpec out;
  out.units = in.units;
  out.features_per_unit = in.h * in.w;
  out.flat = true;
  out.assignment = in.assignment;
  return out;
}

Tensor Flatten::forward(const Tensor& x, const SubnetContext& ctx) {
  (void)ctx;
  assert(x.rank() == 4);
  in_shape_ = x.shape();
  const int n = x.dim(0);
  const int f = static_cast<int>(x.numel() / n);
  return x.reshaped({n, f});
}

Tensor Flatten::backward(const Tensor& grad_y, const SubnetContext& ctx) {
  (void)ctx;
  return grad_y.reshaped(in_shape_);
}

}  // namespace stepping
