// Depthwise 2-D convolution: one kxk filter per channel, no cross-channel
// mixing — the building block of the MobileNet family (paper refs [5]-[7]),
// provided so depthwise-separable architectures can be stepped too.
//
// Subnet semantics: a depthwise unit u reads ONLY input unit u, so it must
// live in exactly its producer's subnet — the layer therefore SHARES the
// producer's assignment vector (moving the producer moves the depthwise
// filter with it) and reports units_movable() == false to the mover.
#pragma once

#include "nn/masked_layer.h"
#include "tensor/ops.h"

namespace stepping {

class DepthwiseConv2d final : public MaskedLayer {
 public:
  /// pad < 0 selects "same" padding (kernel / 2).
  DepthwiseConv2d(std::string name, int kernel, int stride = 1, int pad = -1);

  std::string name() const override { return name_; }
  IOSpec wire(const IOSpec& in, Rng& rng) override;
  Tensor forward(const Tensor& x, const SubnetContext& ctx) override;
  Tensor backward(const Tensor& grad_y, const SubnetContext& ctx) override;
  Tensor forward_step(const Tensor& x, const Tensor& cached_y, int from_subnet,
                      const SubnetContext& ctx) override;
  /// Same receptive-field geometry as a regular convolution (per channel).
  SpatialRegion propagate_dirty_region(const SpatialRegion& in) const override {
    return conv_dirty_out_region(geom_, in);
  }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<DepthwiseConv2d>(*this);
  }

  int in_unit_of(int unit, int col) const override {
    (void)col;
    return unit;  // channel u reads only channel u
  }
  bool units_movable() const override { return false; }
  void revive_in_unit_cols(int in_unit) override { revive_unit_row(in_unit); }

  const Conv2dGeometry& geometry() const { return geom_; }

 private:
  /// Convolve one channel plane with one kxk filter (accumulating).
  void conv_plane(const float* x, const float* w, float* y) const;
  /// Adjoint: scatter grad_y back through the filter into grad_x.
  void conv_plane_backward(const float* gy, const float* w, float* gx) const;
  /// dW for one plane: correlation of input with grad_y.
  void conv_plane_weight_grad(const float* x, const float* gy, float* gw) const;

  std::string name_;
  int kernel_;
  int stride_;
  int pad_;
  Conv2dGeometry geom_;  // out_c == in_c

  Tensor x_cache_;
  Tensor preact_cache_;
};

}  // namespace stepping
