// Subnet-aware 2-D convolution (NCHW), lowered to GEMM via im2col.
//
// Each output filter is a "unit" in the paper's sense; the structural rule
// s(in) <= s(out) gates whole kernel-column groups of the weight matrix.
#pragma once

#include <vector>

#include "nn/masked_layer.h"
#include "tensor/ops.h"

namespace stepping {

class Conv2d final : public MaskedLayer {
 public:
  /// pad < 0 selects "same" padding (kernel / 2).
  Conv2d(std::string name, int out_channels, int kernel, int stride = 1,
         int pad = -1);

  std::string name() const override { return name_; }
  IOSpec wire(const IOSpec& in, Rng& rng) override;
  Tensor forward(const Tensor& x, const SubnetContext& ctx) override;
  bool can_fuse_relu() const override { return true; }
  Tensor forward_relu(const Tensor& x, const SubnetContext& ctx) override;
  Tensor backward(const Tensor& grad_y, const SubnetContext& ctx) override;
  Tensor forward_step(const Tensor& x, const Tensor& cached_y, int from_subnet,
                      const SubnetContext& ctx) override;
  SpatialRegion propagate_dirty_region(const SpatialRegion& in) const override {
    return conv_dirty_out_region(geom_, in);
  }
  /// Delta recompute saves real MACs here (the body convs dominate the MAC
  /// budget); heads are recomputed in full per subnet, so they opt out.
  bool supports_spatial_delta() const override { return !is_head(); }
  Tensor forward_delta(const Tensor& x, const Tensor& cached_y,
                       const SpatialRegion& out_region,
                       const SubnetContext& ctx) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Conv2d>(*this);
  }

  const Conv2dGeometry& geometry() const { return geom_; }

 private:
  Tensor forward_impl(const Tensor& x, const SubnetContext& ctx, bool relu);

  std::string name_;
  int out_channels_;
  int kernel_;
  int stride_;
  int pad_;
  Conv2dGeometry geom_;

  // Per-batch caches for backward.
  Tensor x_cache_;       // input (im2col recomputed in backward to save RAM)
  Tensor preact_cache_;  // conv output + bias, pre-masking (Eq. 2 harvest)
};

}  // namespace stepping
