// Base class for layers whose output units carry subnet assignments
// (Conv2d filters, Dense neurons) — the substrate of SteppingNet's subnet
// masking engine.
//
// Weight layout: a 2-D (units x cols) matrix, unit-major. For Conv2d,
// cols = in_units * kernel^2 grouped per input unit; for Dense,
// cols = in_features grouped per input unit by features_per_unit.
//
// Three masks compose into the effective weights used by forward:
//  * structural mask  — synapse u->v active iff s(u) <= s(v) (head layers
//    are exempt: the classifier is recomputed for every subnet);
//  * prune mask       — unstructured magnitude pruning, non-permanent: the
//    underlying weight keeps receiving gradient updates and revives when its
//    unit moves (paper §III-A1);
//  * subnet selection — units with s(v) > subnet_id are zeroed post-forward
//    (their weights stay in the effective buffer; zeroing the output row is
//    equivalent and cheaper).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layer.h"
#include "nn/param.h"

namespace stepping {

class MaskedLayer : public Layer {
 public:
  MaskedLayer();
  MaskedLayer(const MaskedLayer& other);           // deep-copies assignment
  MaskedLayer& operator=(const MaskedLayer&) = delete;

  // ---- structure ---------------------------------------------------------
  int num_units() const { return units_; }
  int num_cols() const { return cols_; }

  const Assignment& unit_subnet() const { return *out_assign_; }
  AssignmentPtr unit_subnet_ptr() { return out_assign_; }
  const Assignment& in_subnet() const { return *in_assign_; }

  /// Move a unit to another subnet (construction only). Marks the effective
  /// weights dirty; synapse revival is handled by the caller (core::Mover).
  void set_unit_subnet(int unit, int subnet);

  /// Subnet id of the input unit feeding weight column `col`.
  int in_unit_of_col(int col) const { return col / col_group_; }

  /// Input unit feeding weight (unit, col). Fully-connected layers ignore
  /// `unit` (column group determines the producer); depthwise layers
  /// override — their unit u reads only input unit u.
  virtual int in_unit_of(int unit, int col) const {
    (void)unit;
    return in_unit_of_col(col);
  }

  /// Number of consecutive weight columns per input unit.
  int col_group() const { return col_group_; }

  /// Head layers (the final classifier) are exempt from the structural rule
  /// and recomputed for every subnet.
  bool is_head() const { return is_head_; }
  void set_head(bool head) {
    is_head_ = head;
    weights_dirty_ = true;
  }

  /// True iff weight (unit, col) is allowed by the structural rule.
  bool structurally_active(int unit, int col) const;

  // ---- pruning -----------------------------------------------------------
  const std::vector<std::uint8_t>& prune_mask() const { return prune_mask_; }
  /// Re-derive the prune mask from weight magnitudes: keep |w| >= threshold.
  /// Masks are non-permanent (recomputed each construction iteration).
  void apply_magnitude_prune(float threshold);
  /// Clear pruning for one unit's incoming synapses (revival on move).
  void revive_unit_row(int unit);
  /// Clear pruning for the columns fed by input unit `in_unit` (revival of a
  /// moved producer's outgoing synapses).
  virtual void revive_in_unit_cols(int in_unit);

  /// Whether the mover may reassign this layer's units. Depthwise layers
  /// return false: their units mirror their producer's assignment (shared
  /// storage) and move implicitly with it.
  virtual bool units_movable() const { return true; }
  void clear_prune_mask();
  /// Replace the whole prune mask (deserialization). Size must match.
  void set_prune_mask(const std::vector<std::uint8_t>& mask);

  // ---- MAC accounting ----------------------------------------------------
  /// MAC operations contributed by one active weight (conv: out_h*out_w).
  std::int64_t macs_per_weight() const { return macs_per_weight_; }
  /// Active (structural && unpruned) weights of this layer in subnet `id`.
  std::int64_t active_weights(int subnet_id) const;
  /// MACs of this layer in subnet `id`.
  std::int64_t subnet_macs(int subnet_id) const {
    return active_weights(subnet_id) * macs_per_weight();
  }
  /// MACs with every weight active (the unpruned full network).
  std::int64_t full_macs() const {
    return static_cast<std::int64_t>(units_) * cols_ * macs_per_weight();
  }
  /// MACs that leave subnet `s(unit)` if `unit` moves up by one: its active
  /// incoming weights plus its outgoing weights into units of subnets
  /// <= s(unit) in `consumer` (nullptr if this is the last masked layer).
  std::int64_t move_delta_macs(int unit, const MaskedLayer* consumer) const;

  // ---- importance (paper Eq. 2/3) ----------------------------------------
  /// Reset accumulators for `num_subnets` cost functions.
  void reset_importance(int num_subnets);
  /// Accumulated |dL_k/dr_j|; index [k-1][unit].
  const std::vector<std::vector<double>>& importance() const { return imp_acc_; }

  // ---- LR suppression (paper beta^(k-o)) ----------------------------------
  /// Precompute per-element LR scales for training each subnet k in
  /// 1..num_subnets. Owner of a weight: s(out unit) for body layers,
  /// s(in unit) for the head. Call after each structural change.
  void prepare_lr_suppression(int num_subnets, double beta) override;
  /// Point the params' elem_lr_scale at the buffer for subnet k (0 disables).
  void activate_lr_scale(int k) override;

  // ---- params ------------------------------------------------------------
  Param& weight() { return weight_; }
  const Param& weight() const { return weight_; }
  Param& bias() { return bias_; }
  std::vector<Param*> params() override { return {&weight_, &bias_}; }

  /// Pack-cache identity of the current effective weights (see
  /// tensor/gemm_kernel.h). Valid after the last effective_weights() call;
  /// refreshed whenever the effective bytes change, so inference paths can
  /// key the persistent packed-weight cache on it. 0 until first use.
  std::uint64_t pack_id() const { return pack_id_; }

 protected:
  /// Called by subclasses from wire(): sizes all masks/accumulators.
  /// `col_group` = columns per input unit; `macs_per_weight` as defined above.
  void init_structure(int units, int cols, int col_group,
                      std::int64_t macs_per_weight, AssignmentPtr in_assign,
                      Rng& rng, int fan_in);

  /// Effective weights (value * structural mask * prune mask); refreshed
  /// lazily. Subclasses use this in forward.
  const Tensor& effective_weights();

  /// Per-unit activity flags for the executing subnet (1 = compute this
  /// unit). Heads are always fully active. Returns a scratch buffer valid
  /// until the next call.
  const std::vector<std::uint8_t>& active_flags(int subnet_id);
  void mark_weights_dirty() { weights_dirty_ = true; }

  /// Zero grad rows of inactive units, mirroring forward's output masking.
  /// `rows_are_units`: grad laid out (units x anything) after reshape.
  void mask_inactive_grad_rows(Tensor& grad, int per_unit,
                               const SubnetContext& ctx) const;

  /// Harvest dL/dr for all active units: imp[ctx.subnet][j] +=
  /// |sum(grad_preact_j * (preact_j - bias_j))| (paper Eq. 2).
  /// `per_unit` = scalars per unit in the two tensors (spatial size or 1),
  /// laid out (batch, units, per_unit).
  void harvest_importance(const Tensor& grad_preact, const Tensor& preact,
                          const SubnetContext& ctx, int per_unit);

  int units_ = 0;
  int cols_ = 0;
  int col_group_ = 1;
  std::int64_t macs_per_weight_ = 1;
  bool is_head_ = false;

  Param weight_;
  Param bias_;

  AssignmentPtr out_assign_;
  AssignmentPtr in_assign_;

  std::vector<std::uint8_t> prune_mask_;  // 1 = keep
  Tensor w_eff_;
  bool weights_dirty_ = true;
  std::uint64_t pack_id_ = 0;  ///< cache identity of w_eff_'s current bytes
  std::uint64_t seen_weight_version_ = 0;  ///< weight_.version at last refresh
  std::vector<std::uint8_t> active_flags_;  // scratch for active_flags()

  std::vector<std::vector<double>> imp_acc_;

  // lr_scale_[k-1] has units_*cols_ entries for the weight; bias uses
  // bias_lr_scale_[k-1] with units_ entries.
  std::vector<std::vector<float>> lr_scale_;
  std::vector<std::vector<float>> bias_lr_scale_;
};

}  // namespace stepping
