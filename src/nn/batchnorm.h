// Per-channel batch normalization (NCHW).
//
// Subnet safety (DESIGN.md §6 decision 2): BN statistics are per channel and
// a channel's pre-activation is identical in every subnet that contains it
// (the structural rule fixes its input set), so a single BN layer serves all
// subnets. Running statistics are only updated for channels active in the
// executing subnet so that training a small subnet cannot corrupt the
// statistics of channels it does not contain.
#pragma once

#include <vector>

#include "nn/layer.h"
#include "nn/param.h"

namespace stepping {

class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(std::string name, float eps = 1e-5f,
                       float momentum = 0.1f);

  std::string name() const override { return name_; }
  IOSpec wire(const IOSpec& in, Rng& rng) override;
  Tensor forward(const Tensor& x, const SubnetContext& ctx) override;
  Tensor backward(const Tensor& grad_y, const SubnetContext& ctx) override;
  /// Inference BN is elementwise per channel (running statistics do not
  /// depend on the current input), so a dirty input element dirties exactly
  /// itself. Streaming delta runs inference-only, where this holds.
  SpatialRegion propagate_dirty_region(const SpatialRegion& in) const override {
    return in;
  }
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  void prepare_lr_suppression(int num_subnets, double beta) override;
  void activate_lr_scale(int k) override;
  std::unique_ptr<Layer> clone() const override {
    auto c = std::make_unique<BatchNorm2d>(*this);
    c->gamma_.elem_lr_scale = nullptr;
    c->beta_.elem_lr_scale = nullptr;
    return c;
  }

  int channels() const { return channels_; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }
  /// Mutable access for deserialization.
  Tensor& mutable_running_mean() { return running_mean_; }
  Tensor& mutable_running_var() { return running_var_; }

 private:
  std::string name_;
  float eps_;
  float momentum_;
  int channels_ = 0;

  Param gamma_;
  Param beta_;
  Tensor running_mean_;
  Tensor running_var_;

  AssignmentPtr assignment_;

  // Training caches.
  Tensor xhat_cache_;
  std::vector<float> inv_std_cache_;

  std::vector<std::vector<float>> lr_scale_;  // [k-1][channel]
};

}  // namespace stepping
