// SGD with momentum, weight decay, and per-element learning-rate scaling
// (the hook used by SteppingNet's beta^(k-o) update suppression).
#pragma once

#include <unordered_map>
#include <vector>

#include "nn/param.h"

namespace stepping {

struct SgdConfig {
  double lr = 0.05;
  double momentum = 0.9;
  double weight_decay = 5e-4;
};

class Sgd {
 public:
  explicit Sgd(SgdConfig cfg) : cfg_(cfg) {}

  /// v = momentum*v + (g + wd*w); w -= lr * scale * v.
  /// `lr_mult` scales the base learning rate (schedules).
  void step(const std::vector<Param*>& params, double lr_mult = 1.0);

  void zero_grads(const std::vector<Param*>& params);

  /// Drop momentum buffers (e.g. between construction and retraining).
  void clear_state() { velocity_.clear(); }

  SgdConfig& config() { return cfg_; }

 private:
  SgdConfig cfg_;
  std::unordered_map<Param*, Tensor> velocity_;
};

}  // namespace stepping
