#include "nn/depthwise_conv2d.h"

#include <cassert>
#include <stdexcept>

#include "util/thread_pool.h"

namespace stepping {

DepthwiseConv2d::DepthwiseConv2d(std::string name, int kernel, int stride,
                                 int pad)
    : name_(std::move(name)),
      kernel_(kernel),
      stride_(stride),
      pad_(pad < 0 ? kernel / 2 : pad) {
  if (kernel <= 0 || stride <= 0) {
    throw std::invalid_argument("DepthwiseConv2d: bad hyperparameters");
  }
}

IOSpec DepthwiseConv2d::wire(const IOSpec& in, Rng& rng) {
  if (in.flat) {
    throw std::invalid_argument(name_ + ": DepthwiseConv2d needs spatial input");
  }
  geom_ = Conv2dGeometry{in.units, in.h, in.w, in.units, kernel_, stride_, pad_};
  if (geom_.out_h() <= 0 || geom_.out_w() <= 0) {
    throw std::invalid_argument(name_ + ": output collapses to zero size");
  }
  init_structure(in.units, kernel_ * kernel_, kernel_ * kernel_,
                 static_cast<std::int64_t>(geom_.out_h()) * geom_.out_w(),
                 in.assignment, rng, kernel_ * kernel_);
  // A depthwise unit lives and dies with its producer: share the assignment
  // storage so moves propagate automatically.
  out_assign_ = in_assign_;
  weights_dirty_ = true;

  IOSpec out;
  out.units = in.units;
  out.features_per_unit = 1;
  out.h = geom_.out_h();
  out.w = geom_.out_w();
  out.flat = false;
  out.assignment = out_assign_;
  return out;
}

void DepthwiseConv2d::conv_plane(const float* x, const float* w,
                                 float* y) const {
  const int oh = geom_.out_h(), ow = geom_.out_w();
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      float acc = 0.0f;
      for (int ky = 0; ky < kernel_; ++ky) {
        const int iy = oy * stride_ + ky - pad_;
        if (iy < 0 || iy >= geom_.in_h) continue;
        for (int kx = 0; kx < kernel_; ++kx) {
          const int ix = ox * stride_ + kx - pad_;
          if (ix < 0 || ix >= geom_.in_w) continue;
          acc += w[ky * kernel_ + kx] * x[iy * geom_.in_w + ix];
        }
      }
      y[oy * ow + ox] = acc;
    }
  }
}

void DepthwiseConv2d::conv_plane_backward(const float* gy, const float* w,
                                          float* gx) const {
  const int oh = geom_.out_h(), ow = geom_.out_w();
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      const float g = gy[oy * ow + ox];
      if (g == 0.0f) continue;
      for (int ky = 0; ky < kernel_; ++ky) {
        const int iy = oy * stride_ + ky - pad_;
        if (iy < 0 || iy >= geom_.in_h) continue;
        for (int kx = 0; kx < kernel_; ++kx) {
          const int ix = ox * stride_ + kx - pad_;
          if (ix < 0 || ix >= geom_.in_w) continue;
          gx[iy * geom_.in_w + ix] += g * w[ky * kernel_ + kx];
        }
      }
    }
  }
}

void DepthwiseConv2d::conv_plane_weight_grad(const float* x, const float* gy,
                                             float* gw) const {
  const int oh = geom_.out_h(), ow = geom_.out_w();
  for (int ky = 0; ky < kernel_; ++ky) {
    for (int kx = 0; kx < kernel_; ++kx) {
      float acc = 0.0f;
      for (int oy = 0; oy < oh; ++oy) {
        const int iy = oy * stride_ + ky - pad_;
        if (iy < 0 || iy >= geom_.in_h) continue;
        for (int ox = 0; ox < ow; ++ox) {
          const int ix = ox * stride_ + kx - pad_;
          if (ix < 0 || ix >= geom_.in_w) continue;
          acc += x[iy * geom_.in_w + ix] * gy[oy * ow + ox];
        }
      }
      gw[ky * kernel_ + kx] += acc;
    }
  }
}

Tensor DepthwiseConv2d::forward(const Tensor& x, const SubnetContext& ctx) {
  assert(x.rank() == 4 && x.dim(1) == units_);
  const int n = x.dim(0);
  const int oh = geom_.out_h(), ow = geom_.out_w();
  const int spatial = oh * ow;
  const Tensor& w = effective_weights();
  const auto& active = active_flags(ctx.subnet_id);

  Tensor y({n, units_, oh, ow});
  const std::int64_t in_plane = static_cast<std::int64_t>(geom_.in_h) * geom_.in_w;
  const float* b = bias_.value.data();
  // Each (image, unit) plane is independent; partition the flattened plane
  // index so every output plane is owned by one thread.
  parallel_for_cost(0, static_cast<std::int64_t>(n) * units_,
                    static_cast<std::int64_t>(spatial) * cols_,
                    [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t p = p0; p < p1; ++p) {
      const int i = static_cast<int>(p / units_);
      const int u = static_cast<int>(p % units_);
      if (!active[static_cast<std::size_t>(u)]) continue;
      const float* xp =
          x.data() + (static_cast<std::int64_t>(i) * units_ + u) * in_plane;
      float* yp =
          y.data() + (static_cast<std::int64_t>(i) * units_ + u) * spatial;
      conv_plane(xp, w.data() + static_cast<std::int64_t>(u) * cols_, yp);
      const float bu = b[u];
      for (int s = 0; s < spatial; ++s) yp[s] += bu;
    }
  });
  if (ctx.training) {
    x_cache_ = x;
    preact_cache_ = y;
  }
  return y;
}

Tensor DepthwiseConv2d::backward(const Tensor& grad_y_in,
                                 const SubnetContext& ctx) {
  Tensor grad_y = grad_y_in;
  const int n = grad_y.dim(0);
  const int spatial = geom_.out_h() * geom_.out_w();
  if (!is_head_) mask_inactive_units(grad_y, *out_assign_, 1, ctx.subnet_id);

  if (ctx.harvest_importance) {
    harvest_importance(grad_y, preact_cache_, ctx, spatial);
  }

  if (weight_.grad.shape() != weight_.value.shape()) weight_.zero_grad();
  if (bias_.grad.shape() != bias_.value.shape()) bias_.zero_grad();

  const Tensor& w = effective_weights();
  const auto& active = active_flags(ctx.subnet_id);
  Tensor grad_x(x_cache_.shape());
  const std::int64_t in_plane = static_cast<std::int64_t>(geom_.in_h) * geom_.in_w;
  float* db = bias_.grad.data();
  // Partition over units (not images): weight/bias gradients of unit u are
  // then owned by one thread, and the per-unit accumulation over images
  // keeps the serial i-ascending order, so gradients stay bit-exact.
  parallel_for_cost(0, units_,
                    static_cast<std::int64_t>(n) * spatial * cols_ * 2,
                    [&](std::int64_t u0, std::int64_t u1) {
    for (std::int64_t u = u0; u < u1; ++u) {
      if (!active[static_cast<std::size_t>(u)]) continue;
      for (int i = 0; i < n; ++i) {
        const float* gy =
            grad_y.data() + (static_cast<std::int64_t>(i) * units_ + u) * spatial;
        const float* xp =
            x_cache_.data() +
            (static_cast<std::int64_t>(i) * units_ + u) * in_plane;
        float* gx =
            grad_x.data() + (static_cast<std::int64_t>(i) * units_ + u) * in_plane;
        conv_plane_weight_grad(xp, gy,
                               weight_.grad.data() +
                                   static_cast<std::int64_t>(u) * cols_);
        conv_plane_backward(gy, w.data() + static_cast<std::int64_t>(u) * cols_,
                            gx);
        float acc = 0.0f;
        for (int s = 0; s < spatial; ++s) acc += gy[s];
        db[u] += acc;
      }
    }
  });
  return grad_x;
}

Tensor DepthwiseConv2d::forward_step(const Tensor& x, const Tensor& cached_y,
                                     int from_subnet, const SubnetContext& ctx) {
  assert(!ctx.training);
  if (cached_y.empty()) return forward(x, ctx);
  const int n = x.dim(0);
  const int spatial = geom_.out_h() * geom_.out_w();
  const Tensor& w = effective_weights();
  Tensor y = cached_y;
  const std::int64_t in_plane = static_cast<std::int64_t>(geom_.in_h) * geom_.in_w;
  const float* b = bias_.value.data();
  parallel_for_cost(0, static_cast<std::int64_t>(n) * units_,
                    static_cast<std::int64_t>(spatial) * cols_,
                    [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t p = p0; p < p1; ++p) {
      const int i = static_cast<int>(p / units_);
      const int u = static_cast<int>(p % units_);
      const int sv = (*out_assign_)[static_cast<std::size_t>(u)];
      if (sv <= from_subnet || sv > ctx.subnet_id) continue;
      const float* xp =
          x.data() + (static_cast<std::int64_t>(i) * units_ + u) * in_plane;
      float* yp =
          y.data() + (static_cast<std::int64_t>(i) * units_ + u) * spatial;
      conv_plane(xp, w.data() + static_cast<std::int64_t>(u) * cols_, yp);
      for (int s = 0; s < spatial; ++s) yp[s] += b[u];
    }
  });
  if (!is_head_) mask_inactive_units(y, *out_assign_, 1, ctx.subnet_id);
  return y;
}

}  // namespace stepping
