// Batch-level training helpers shared by the pretrainer, the construction
// workflow, the distiller, and the baselines.
#pragma once

#include <vector>

#include "nn/loss.h"
#include "nn/network.h"
#include "nn/sgd.h"

namespace stepping {

struct BatchStats {
  double loss = 0.0;
  int correct = 0;
  int total = 0;

  double accuracy() const { return total > 0 ? static_cast<double>(correct) / total : 0.0; }
};

/// One SGD step on one batch for one subnet: forward, CE loss, backward,
/// step. Gradients are zeroed internally.
BatchStats train_batch(Network& net, Sgd& sgd, const Tensor& x,
                       const std::vector<int>& labels, const SubnetContext& ctx,
                       double lr_mult = 1.0);

/// Like train_batch but with the Eq. 4 distillation loss.
BatchStats distill_batch(Network& net, Sgd& sgd, const Tensor& x,
                         const std::vector<int>& labels,
                         const Tensor& teacher_probs, double gamma,
                         const SubnetContext& ctx, double lr_mult = 1.0);

/// Inference on one batch; returns top-1 hits.
int eval_batch(Network& net, const Tensor& x, const std::vector<int>& labels,
               int subnet_id);

/// Same with a caller-built context (e.g. an int8 precision policy and
/// calibration table — ISSUE 7). ctx.training should be false.
int eval_batch(Network& net, const Tensor& x, const std::vector<int>& labels,
               const SubnetContext& ctx);

/// Softmax probabilities for a batch (inference mode), e.g. teacher targets.
Tensor predict_probs(Network& net, const Tensor& x, int subnet_id);

}  // namespace stepping
