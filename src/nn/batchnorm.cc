#include "nn/batchnorm.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace stepping {

BatchNorm2d::BatchNorm2d(std::string name, float eps, float momentum)
    : name_(std::move(name)), eps_(eps), momentum_(momentum) {}

IOSpec BatchNorm2d::wire(const IOSpec& in, Rng& rng) {
  (void)rng;
  if (in.flat) throw std::invalid_argument(name_ + ": BatchNorm2d needs NCHW");
  const bool first_wire = (channels_ == 0);
  channels_ = in.units;
  assignment_ = in.assignment;
  if (first_wire) {
    gamma_.value = Tensor({channels_});
    gamma_.value.fill(1.0f);
    gamma_.apply_decay = false;
    beta_.value = Tensor({channels_});
    beta_.apply_decay = false;
    running_mean_ = Tensor({channels_});
    running_var_ = Tensor({channels_});
    running_var_.fill(1.0f);
  } else {
    assert(gamma_.value.dim(0) == channels_);
  }
  return in;  // shape and assignment unchanged
}

Tensor BatchNorm2d::forward(const Tensor& x, const SubnetContext& ctx) {
  assert(x.rank() == 4 && x.dim(1) == channels_);
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::int64_t plane = static_cast<std::int64_t>(h) * w;
  const std::int64_t m = static_cast<std::int64_t>(n) * plane;

  Tensor y(x.shape());
  if (ctx.training) {
    if (xhat_cache_.shape() != x.shape()) xhat_cache_ = Tensor(x.shape());
    inv_std_cache_.assign(static_cast<std::size_t>(channels_), 0.0f);
  }

  const float* px = x.data();
  float* py = y.data();
  float* pxhat = ctx.training ? xhat_cache_.data() : nullptr;
  for (int c = 0; c < channels_; ++c) {
    const bool active = (*assignment_)[static_cast<std::size_t>(c)] <= ctx.subnet_id;
    if (!active) {
      // y is freshly zero-filled; just invalidate the xhat cache planes.
      if (ctx.training) {
        for (int i = 0; i < n; ++i) {
          const std::int64_t off =
              (static_cast<std::int64_t>(i) * channels_ + c) * plane;
          float* xh = pxhat + off;
          for (std::int64_t j = 0; j < plane; ++j) xh[j] = 0.0f;
        }
      }
      continue;
    }
    float mean, var;
    if (ctx.training) {
      double s = 0.0, s2 = 0.0;
      for (int i = 0; i < n; ++i) {
        const float* src = px + (static_cast<std::int64_t>(i) * channels_ + c) * plane;
        for (std::int64_t j = 0; j < plane; ++j) {
          s += src[j];
          s2 += static_cast<double>(src[j]) * src[j];
        }
      }
      mean = static_cast<float>(s / static_cast<double>(m));
      var = static_cast<float>(s2 / static_cast<double>(m)) - mean * mean;
      if (var < 0.0f) var = 0.0f;
      running_mean_[c] = (1.0f - momentum_) * running_mean_[c] + momentum_ * mean;
      running_var_[c] = (1.0f - momentum_) * running_var_[c] + momentum_ * var;
    } else {
      mean = running_mean_[c];
      var = running_var_[c];
    }
    const float inv_std = 1.0f / std::sqrt(var + eps_);
    if (ctx.training) inv_std_cache_[static_cast<std::size_t>(c)] = inv_std;
    const float g = gamma_.value[c], b = beta_.value[c];
    for (int i = 0; i < n; ++i) {
      const std::int64_t off = (static_cast<std::int64_t>(i) * channels_ + c) * plane;
      const float* src = px + off;
      float* dst = py + off;
      for (std::int64_t j = 0; j < plane; ++j) {
        const float xv = (src[j] - mean) * inv_std;
        dst[j] = g * xv + b;
        if (ctx.training) pxhat[off + j] = xv;
      }
    }
  }
  return y;
}

Tensor BatchNorm2d::backward(const Tensor& grad_y, const SubnetContext& ctx) {
  assert(ctx.training);
  const int n = grad_y.dim(0), h = grad_y.dim(2), w = grad_y.dim(3);
  const std::int64_t plane = static_cast<std::int64_t>(h) * w;
  const std::int64_t m = static_cast<std::int64_t>(n) * plane;

  if (gamma_.grad.shape() != gamma_.value.shape()) gamma_.zero_grad();
  if (beta_.grad.shape() != beta_.value.shape()) beta_.zero_grad();

  Tensor grad_x(grad_y.shape());
  const float* gy = grad_y.data();
  const float* xh = xhat_cache_.data();
  float* gx = grad_x.data();

  for (int c = 0; c < channels_; ++c) {
    const bool active = (*assignment_)[static_cast<std::size_t>(c)] <= ctx.subnet_id;
    if (!active) continue;  // grad_x is freshly zero-filled
    double sum_gy = 0.0, sum_gy_xh = 0.0;
    for (int i = 0; i < n; ++i) {
      const std::int64_t off = (static_cast<std::int64_t>(i) * channels_ + c) * plane;
      for (std::int64_t j = 0; j < plane; ++j) {
        sum_gy += gy[off + j];
        sum_gy_xh += static_cast<double>(gy[off + j]) * xh[off + j];
      }
    }
    gamma_.grad[c] += static_cast<float>(sum_gy_xh);
    beta_.grad[c] += static_cast<float>(sum_gy);

    const float g = gamma_.value[c];
    const float inv_std = inv_std_cache_[static_cast<std::size_t>(c)];
    const float k1 = static_cast<float>(sum_gy / static_cast<double>(m));
    const float k2 = static_cast<float>(sum_gy_xh / static_cast<double>(m));
    for (int i = 0; i < n; ++i) {
      const std::int64_t off = (static_cast<std::int64_t>(i) * channels_ + c) * plane;
      for (std::int64_t j = 0; j < plane; ++j) {
        gx[off + j] = g * inv_std * (gy[off + j] - k1 - xh[off + j] * k2);
      }
    }
  }
  return grad_x;
}

void BatchNorm2d::prepare_lr_suppression(int num_subnets, double beta) {
  lr_scale_.assign(static_cast<std::size_t>(num_subnets), {});
  for (int k = 1; k <= num_subnets; ++k) {
    auto& s = lr_scale_[static_cast<std::size_t>(k - 1)];
    s.assign(static_cast<std::size_t>(channels_), 1.0f);
    for (int c = 0; c < channels_; ++c) {
      const int o = (*assignment_)[static_cast<std::size_t>(c)];
      if (o < k) s[static_cast<std::size_t>(c)] = static_cast<float>(std::pow(beta, k - o));
    }
  }
}

void BatchNorm2d::activate_lr_scale(int k) {
  if (k <= 0 || lr_scale_.empty()) {
    gamma_.elem_lr_scale = nullptr;
    beta_.elem_lr_scale = nullptr;
    return;
  }
  assert(k <= static_cast<int>(lr_scale_.size()));
  gamma_.elem_lr_scale = &lr_scale_[static_cast<std::size_t>(k - 1)];
  beta_.elem_lr_scale = &lr_scale_[static_cast<std::size_t>(k - 1)];
}

}  // namespace stepping
