// Subnet-aware fully-connected layer.
//
// Consumes a flat IOSpec (insert Flatten after convolutions). Weight columns
// are grouped per input unit (`features_per_unit` consecutive columns map to
// one producer unit) so the structural rule applies at unit granularity even
// after flattening an HxW plane.
#pragma once

#include "nn/masked_layer.h"

namespace stepping {

class Dense final : public MaskedLayer {
 public:
  Dense(std::string name, int out_features);

  std::string name() const override { return name_; }
  IOSpec wire(const IOSpec& in, Rng& rng) override;
  Tensor forward(const Tensor& x, const SubnetContext& ctx) override;
  bool can_fuse_relu() const override { return true; }
  Tensor forward_relu(const Tensor& x, const SubnetContext& ctx) override;
  Tensor backward(const Tensor& grad_y, const SubnetContext& ctx) override;
  Tensor forward_step(const Tensor& x, const Tensor& cached_y, int from_subnet,
                      const SubnetContext& ctx) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Dense>(*this);
  }

 private:
  Tensor forward_impl(const Tensor& x, const SubnetContext& ctx, bool relu);

  std::string name_;
  int out_features_;

  Tensor x_cache_;
  Tensor preact_cache_;
};

}  // namespace stepping
