// Loss functions: softmax cross-entropy and the knowledge-distillation loss
// of paper Eq. 4.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace stepping {

struct LossOutput {
  double loss = 0.0;       ///< mean loss over the batch
  Tensor grad_logits;      ///< dL/d(logits), already divided by batch size
  int correct = 0;         ///< top-1 hits in the batch
};

/// Mean softmax cross-entropy; grad = (softmax(logits) - onehot) / N.
LossOutput softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels);

/// Paper Eq. 4: L' = gamma * CE + (1 - gamma) * KL(teacher || student).
/// `teacher_probs` are the frozen original network's softmax outputs for the
/// same batch. grad = [gamma*(p - onehot) + (1-gamma)*(p - p_teacher)] / N.
LossOutput distillation_loss(const Tensor& logits,
                             const std::vector<int>& labels,
                             const Tensor& teacher_probs, double gamma);

}  // namespace stepping
