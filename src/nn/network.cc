#include "nn/network.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "obs/trace.h"
#include "quant/calibration.h"

namespace stepping {

void Network::wire(int in_c, int in_h, int in_w, Rng& rng) {
  if (layers_.empty()) throw std::logic_error("Network::wire: no layers");
  in_c_ = in_c;
  in_h_ = in_h;
  in_w_ = in_w;
  if (!input_assign_) {
    // Image channels belong to subnet 1: available to every subnet.
    input_assign_ = std::make_shared<Assignment>(static_cast<std::size_t>(in_c), 1);
  }
  IOSpec spec;
  spec.units = in_c;
  spec.features_per_unit = 1;
  spec.h = in_h;
  spec.w = in_w;
  spec.flat = false;
  spec.assignment = input_assign_;

  MaskedLayer* last_masked = nullptr;
  for (auto& layer : layers_) {
    spec = layer->wire(spec, rng);
    layer->set_out_spec(spec);
    if (auto* m = dynamic_cast<MaskedLayer*>(layer.get())) last_masked = m;
  }
  if (last_masked == nullptr) {
    throw std::logic_error("Network::wire: no masked (trainable) layer");
  }
  if (!wired_) last_masked->set_head(true);
  wired_ = true;
}

Tensor Network::forward(const Tensor& x, const SubnetContext& ctx) {
  assert(wired_);
  Tensor cur = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    // Inference-only fusion: collapse a Layer -> ReLU pair into one fused
    // forward (bias + ReLU applied in the GEMM epilogue). Training keeps the
    // unfused path — backward needs the pre-activation cache and ReLU mask.
    if (!ctx.training && i + 1 < layers_.size() && layers_[i]->can_fuse_relu() &&
        layers_[i + 1]->is_relu()) {
      cur = layers_[i]->forward_relu(cur, ctx);
      ++i;  // the ReLU's work is already done
      continue;
    }
    cur = layers_[i]->forward(cur, ctx);
  }
  return cur;
}

Tensor Network::backward(const Tensor& grad_logits, const SubnetContext& ctx) {
  assert(wired_);
  Tensor cur = grad_logits;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    cur = (*it)->backward(cur, ctx);
  }
  return cur;
}

std::vector<Param*> Network::params() {
  std::vector<Param*> out;
  for (auto& layer : layers_) {
    for (Param* p : layer->params()) out.push_back(p);
  }
  return out;
}

void Network::zero_grads() {
  for (Param* p : params()) p->zero_grad();
}

std::vector<Layer*> Network::layer_ptrs() {
  std::vector<Layer*> out;
  out.reserve(layers_.size());
  for (auto& l : layers_) out.push_back(l.get());
  return out;
}

std::vector<MaskedLayer*> Network::masked_layers() {
  std::vector<MaskedLayer*> out;
  for (auto& layer : layers_) {
    if (auto* m = dynamic_cast<MaskedLayer*>(layer.get())) out.push_back(m);
  }
  return out;
}

std::vector<MaskedLayer*> Network::body_layers() {
  std::vector<MaskedLayer*> out;
  for (MaskedLayer* m : masked_layers()) {
    if (!m->is_head()) out.push_back(m);
  }
  return out;
}

MaskedLayer* Network::consumer_of(const MaskedLayer* layer) {
  const auto all = masked_layers();
  for (std::size_t i = 0; i + 1 < all.size(); ++i) {
    if (all[i] == layer) return all[i + 1];
  }
  return nullptr;
}

Network Network::clone() const {
  assert(wired_);
  Network copy;
  for (const auto& layer : layers_) copy.layers_.push_back(layer->clone());
  // Preserve head flag through rewire: the clone's wire() would set it for a
  // fresh network, but cloned layers keep is_head_ already; mark wired state
  // by rewiring, which re-links assignment pointers through the clone.
  Rng dummy(0);
  copy.wire(in_c_, in_h_, in_w_, dummy);
  return copy;
}

int Network::num_classes() {
  const auto all = masked_layers();
  assert(!all.empty());
  return all.back()->num_units();
}

void Network::reset_importance(int num_subnets) {
  for (MaskedLayer* m : masked_layers()) m->reset_importance(num_subnets);
}

void Network::prepare_lr_suppression(int num_subnets, double beta) {
  for (auto& layer : layers_) layer->prepare_lr_suppression(num_subnets, beta);
}

void Network::activate_lr_scale(int k) {
  for (auto& layer : layers_) layer->activate_lr_scale(k);
}

void Network::clear_prune_masks() {
  for (MaskedLayer* m : masked_layers()) m->clear_prune_mask();
}

std::shared_ptr<quant::CalibrationTable> calibrate_int8(Network& net,
                                                        const Tensor& inputs,
                                                        int batch,
                                                        int max_level) {
  assert(net.wired());
  assert(inputs.rank() == 4);
  STEPPING_TRACE_SCOPE_CAT("serve", "quant.calibrate");
  auto table = std::make_shared<quant::CalibrationTable>();
  const int n = inputs.dim(0);
  const int c = inputs.dim(1), h = inputs.dim(2), w = inputs.dim(3);
  const std::int64_t img = static_cast<std::int64_t>(c) * h * w;
  if (batch <= 0) batch = 1;
  for (int level = 1; level <= max_level; ++level) {
    SubnetContext ctx;
    ctx.subnet_id = level;
    ctx.num_subnets = max_level;
    ctx.calib_record = table.get();
    for (int i0 = 0; i0 < n; i0 += batch) {
      const int bn = std::min(batch, n - i0);
      Tensor xb({bn, c, h, w});
      std::memcpy(xb.data(), inputs.data() + i0 * img,
                  sizeof(float) * static_cast<std::size_t>(bn) * img);
      net.forward(xb, ctx);
    }
  }
  return table;
}

}  // namespace stepping
