#include "nn/trainer.h"

#include "tensor/ops.h"

namespace stepping {

BatchStats train_batch(Network& net, Sgd& sgd, const Tensor& x,
                       const std::vector<int>& labels, const SubnetContext& ctx,
                       double lr_mult) {
  const auto params = net.params();
  sgd.zero_grads(params);
  const Tensor logits = net.forward(x, ctx);
  LossOutput lo = softmax_cross_entropy(logits, labels);
  net.backward(lo.grad_logits, ctx);
  sgd.step(params, lr_mult);
  return BatchStats{lo.loss, lo.correct, static_cast<int>(labels.size())};
}

BatchStats distill_batch(Network& net, Sgd& sgd, const Tensor& x,
                         const std::vector<int>& labels,
                         const Tensor& teacher_probs, double gamma,
                         const SubnetContext& ctx, double lr_mult) {
  const auto params = net.params();
  sgd.zero_grads(params);
  const Tensor logits = net.forward(x, ctx);
  LossOutput lo = distillation_loss(logits, labels, teacher_probs, gamma);
  net.backward(lo.grad_logits, ctx);
  sgd.step(params, lr_mult);
  return BatchStats{lo.loss, lo.correct, static_cast<int>(labels.size())};
}

int eval_batch(Network& net, const Tensor& x, const std::vector<int>& labels,
               int subnet_id) {
  SubnetContext ctx;
  ctx.subnet_id = subnet_id;
  ctx.training = false;
  const Tensor logits = net.forward(x, ctx);
  const int n = logits.dim(0), c = logits.dim(1);
  int correct = 0;
  const float* p = logits.data();
  for (int i = 0; i < n; ++i) {
    const float* row = p + static_cast<std::int64_t>(i) * c;
    int best = 0;
    for (int j = 1; j < c; ++j) {
      if (row[j] > row[best]) best = j;
    }
    if (best == labels[static_cast<std::size_t>(i)]) ++correct;
  }
  return correct;
}

Tensor predict_probs(Network& net, const Tensor& x, int subnet_id) {
  SubnetContext ctx;
  ctx.subnet_id = subnet_id;
  ctx.training = false;
  const Tensor logits = net.forward(x, ctx);
  Tensor probs;
  softmax_rows(logits, probs);
  return probs;
}

}  // namespace stepping
