#include "nn/trainer.h"

#include <atomic>

#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/thread_pool.h"

namespace stepping {

BatchStats train_batch(Network& net, Sgd& sgd, const Tensor& x,
                       const std::vector<int>& labels, const SubnetContext& ctx,
                       double lr_mult) {
  const auto params = net.params();
  sgd.zero_grads(params);
  Tensor logits;
  {
    STEPPING_TRACE_SCOPE_CAT("train", "train.forward");
    logits = net.forward(x, ctx);
  }
  LossOutput lo = softmax_cross_entropy(logits, labels);
  {
    STEPPING_TRACE_SCOPE_CAT("train", "train.backward");
    net.backward(lo.grad_logits, ctx);
  }
  {
    STEPPING_TRACE_SCOPE_CAT("train", "sgd.step");
    sgd.step(params, lr_mult);
  }
  return BatchStats{lo.loss, lo.correct, static_cast<int>(labels.size())};
}

BatchStats distill_batch(Network& net, Sgd& sgd, const Tensor& x,
                         const std::vector<int>& labels,
                         const Tensor& teacher_probs, double gamma,
                         const SubnetContext& ctx, double lr_mult) {
  const auto params = net.params();
  sgd.zero_grads(params);
  Tensor logits;
  {
    STEPPING_TRACE_SCOPE_CAT("train", "train.forward");
    logits = net.forward(x, ctx);
  }
  LossOutput lo = distillation_loss(logits, labels, teacher_probs, gamma);
  {
    STEPPING_TRACE_SCOPE_CAT("train", "train.backward");
    net.backward(lo.grad_logits, ctx);
  }
  {
    STEPPING_TRACE_SCOPE_CAT("train", "sgd.step");
    sgd.step(params, lr_mult);
  }
  return BatchStats{lo.loss, lo.correct, static_cast<int>(labels.size())};
}

int eval_batch(Network& net, const Tensor& x, const std::vector<int>& labels,
               int subnet_id) {
  SubnetContext ctx;
  ctx.subnet_id = subnet_id;
  ctx.training = false;
  return eval_batch(net, x, labels, ctx);
}

int eval_batch(Network& net, const Tensor& x, const std::vector<int>& labels,
               const SubnetContext& ctx) {
  STEPPING_TRACE_SCOPE_CAT("train", "eval.batch");
  const Tensor logits = net.forward(x, ctx);
  const int n = logits.dim(0), c = logits.dim(1);
  // Per-sample argmax scoring; chunks accumulate a local count and merge it
  // once (integer adds commute, so the total is exact for any thread count).
  std::atomic<int> correct{0};
  const float* p = logits.data();
  parallel_for_cost(0, n, c, [&](std::int64_t i0, std::int64_t i1) {
    int local = 0;
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* row = p + i * c;
      int best = 0;
      for (int j = 1; j < c; ++j) {
        if (row[j] > row[best]) best = j;
      }
      if (best == labels[static_cast<std::size_t>(i)]) ++local;
    }
    correct.fetch_add(local, std::memory_order_relaxed);
  });
  return correct.load();
}

Tensor predict_probs(Network& net, const Tensor& x, int subnet_id) {
  SubnetContext ctx;
  ctx.subnet_id = subnet_id;
  ctx.training = false;
  const Tensor logits = net.forward(x, ctx);
  Tensor probs;
  softmax_rows(logits, probs);
  return probs;
}

}  // namespace stepping
