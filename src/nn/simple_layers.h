// Parameterless layers: ReLU, MaxPool2d, Flatten.
//
// None of these mix channels, so they preserve the subnet reuse invariant
// untouched: an inactive (zeroed) channel stays zero through ReLU and
// MaxPool, and Flatten only reinterprets the feature axis, forwarding the
// producer's assignment at `features_per_unit = H*W` granularity.
#pragma once

#include <vector>

#include "nn/layer.h"

namespace stepping {

class ReLU final : public Layer {
 public:
  explicit ReLU(std::string name) : name_(std::move(name)) {}
  std::string name() const override { return name_; }
  IOSpec wire(const IOSpec& in, Rng& rng) override;
  Tensor forward(const Tensor& x, const SubnetContext& ctx) override;
  Tensor backward(const Tensor& grad_y, const SubnetContext& ctx) override;
  bool is_relu() const override { return true; }
  /// Elementwise: a dirty input element dirties exactly itself.
  SpatialRegion propagate_dirty_region(const SpatialRegion& in) const override {
    return in;
  }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<ReLU>(*this);
  }

 private:
  std::string name_;
  std::vector<unsigned char> mask_;
};

class MaxPool2d final : public Layer {
 public:
  MaxPool2d(std::string name, int k) : name_(std::move(name)), k_(k) {}
  std::string name() const override { return name_; }
  IOSpec wire(const IOSpec& in, Rng& rng) override;
  Tensor forward(const Tensor& x, const SubnetContext& ctx) override;
  Tensor backward(const Tensor& grad_y, const SubnetContext& ctx) override;
  /// Non-overlapping kxk window, stride k: output (r, c) reads input
  /// [r*k, r*k + k) x [c*k, c*k + k), so dirty input [i0, i1) maps to
  /// output [i0 / k, ceil(i1 / k)).
  SpatialRegion propagate_dirty_region(const SpatialRegion& in) const override {
    const IOSpec& s = out_spec();
    SpatialRegion r{in.r0 / k_, (in.r1 + k_ - 1) / k_, in.c0 / k_,
                    (in.c1 + k_ - 1) / k_};
    return r.clipped(s.h, s.w);
  }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<MaxPool2d>(*this);
  }

 private:
  std::string name_;
  int k_;
  std::vector<int> argmax_;
  std::vector<int> in_shape_;
};

class Flatten final : public Layer {
 public:
  explicit Flatten(std::string name) : name_(std::move(name)) {}
  std::string name() const override { return name_; }
  IOSpec wire(const IOSpec& in, Rng& rng) override;
  Tensor forward(const Tensor& x, const SubnetContext& ctx) override;
  Tensor backward(const Tensor& grad_y, const SubnetContext& ctx) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Flatten>(*this);
  }

 private:
  std::string name_;
  std::vector<int> in_shape_;
};

}  // namespace stepping
