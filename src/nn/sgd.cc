#include "nn/sgd.h"

#include <cassert>

namespace stepping {

void Sgd::step(const std::vector<Param*>& params, double lr_mult) {
  const float lr = static_cast<float>(cfg_.lr * lr_mult);
  const float mu = static_cast<float>(cfg_.momentum);
  for (Param* p : params) {
    if (p->grad.shape() != p->value.shape()) continue;  // never touched
    ++p->version;
    Tensor& v = velocity_[p];
    if (v.shape() != p->value.shape()) v = Tensor(p->value.shape());
    const float wd =
        p->apply_decay ? static_cast<float>(cfg_.weight_decay) : 0.0f;
    float* pv = v.data();
    float* pw = p->value.data();
    const float* pg = p->grad.data();
    const std::int64_t n = p->value.numel();
    if (p->elem_lr_scale != nullptr) {
      assert(static_cast<std::int64_t>(p->elem_lr_scale->size()) == n);
      const float* scale = p->elem_lr_scale->data();
      for (std::int64_t i = 0; i < n; ++i) {
        pv[i] = mu * pv[i] + pg[i] + wd * pw[i];
        pw[i] -= lr * scale[i] * pv[i];
      }
    } else {
      for (std::int64_t i = 0; i < n; ++i) {
        pv[i] = mu * pv[i] + pg[i] + wd * pw[i];
        pw[i] -= lr * pv[i];
      }
    }
  }
}

void Sgd::zero_grads(const std::vector<Param*>& params) {
  for (Param* p : params) p->zero_grad();
}

}  // namespace stepping
