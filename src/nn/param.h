// Trainable parameter: value + gradient + optimizer hints.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace stepping {

/// A named trainable tensor with its gradient accumulator.
///
/// `elem_lr_scale`, when non-null, points to a per-element learning-rate
/// multiplier owned by the layer. SteppingNet uses it to suppress weight
/// updates in smaller subnets while a larger subnet trains (paper §III-A2,
/// the beta^(k-o) rule); it stays null for plain training.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;
  /// Per-element LR multipliers (size == value.numel()) or nullptr for 1.0.
  const std::vector<float>* elem_lr_scale = nullptr;
  /// Whether weight decay applies (false for biases / BN affine params).
  bool apply_decay = true;
  /// Bumped by every optimizer step and by deserialization, so caches keyed
  /// on the value (the GEMM packed-weight cache) can detect staleness even
  /// though those writers bypass the owning layer's dirty flag.
  std::uint64_t version = 0;

  void zero_grad() {
    if (grad.shape() != value.shape()) grad = Tensor(value.shape());
    grad.zero();
  }
};

}  // namespace stepping
