// Deployment round trip: train once, serialize the artifact, reload it in a
// fresh process-like context, and serve adaptive (confidence-gated)
// inference with detailed metrics — the workflow a downstream user of this
// library would actually run in production.
//
//   [train side]   pipeline -> save_network("model.bin")
//   [deploy side]  build same topology -> load_network -> AdaptiveExecutor
#include <cstdio>

#include "core/adaptive.h"
#include "core/macs.h"
#include "core/metrics.h"
#include "core/serialize.h"
#include "core/stepping_net.h"
#include "data/synthetic.h"
#include "models/models.h"
#include "util/env.h"
#include "util/table.h"

using namespace stepping;

namespace {

Network build_topology(double width, double expansion) {
  ModelConfig mc{.classes = 10, .expansion = expansion, .width_mult = width};
  return build_lenet3c1l(mc);
}

}  // namespace

int main() {
  const double width = env_or_double("STEPPING_WIDTH", 0.25);
  const std::string path = "steppingnet_model.bin";
  const DataSplit data = make_synthetic(synth_cifar10(/*train_per_class=*/80,
                                                      /*test_per_class=*/30));

  // ---- Train side ----------------------------------------------------------
  {
    std::printf("== train side ==\n");
    Network reference = build_topology(width, 1.0);
    SteppingConfig cfg;
    cfg.num_subnets = 4;
    cfg.mac_budget_frac = {0.10, 0.30, 0.50, 0.85};
    cfg.reference_macs = full_macs(reference);
    cfg.batches_per_iter = 3;
    cfg.max_iters = 40;

    SteppingNet sn(build_topology(width, 1.8), cfg);
    sn.pretrain(data.train, /*epochs=*/4);
    sn.construct(data.train);
    sn.distill(data.train, /*epochs=*/2);
    if (!save_network(sn.network(), path)) {
      std::fprintf(stderr, "failed to save %s\n", path.c_str());
      return 1;
    }
    std::printf("model trained and saved to %s\n\n", path.c_str());
  }

  // ---- Deploy side ---------------------------------------------------------
  std::printf("== deploy side ==\n");
  Network net = build_topology(width, 1.8);  // same topology, fresh weights
  if (!load_network(net, path)) {
    std::fprintf(stderr, "failed to load %s\n", path.c_str());
    return 1;
  }

  // Detailed per-subnet quality report.
  Table quality({"subnet", "top-1", "top-3", "macro-F1", "MACs"});
  for (int sub = 1; sub <= 4; ++sub) {
    const EvaluationMetrics m = evaluate_metrics(net, data.test, sub, /*k=*/3);
    quality.add_row({std::to_string(sub), Table::fmt_pct(m.top1_accuracy()),
                     Table::fmt_pct(m.topk_accuracy()),
                     Table::fmt(m.macro_f1(), 3),
                     std::to_string(subnet_macs(net, sub))});
  }
  quality.print("reloaded model, per-subnet quality:");

  // Serve with the adaptive policy under a per-request MAC budget.
  AdaptiveConfig acfg;
  acfg.max_subnet = 4;
  acfg.confidence_threshold = 0.9;
  acfg.mac_budget = static_cast<std::int64_t>(0.7 * subnet_macs(net, 4));
  AdaptiveExecutor server(net, acfg);

  int correct = 0;
  long long macs = 0;
  std::vector<int> exits(4, 0);
  Tensor x;
  std::vector<int> y;
  for (int i = 0; i < data.test.size(); ++i) {
    data.test.batch(i, 1, x, y);
    const AdaptiveResult r = server.run(x);
    macs += r.macs;
    ++exits[static_cast<std::size_t>(r.exit_subnet - 1)];
    int best = 0;
    for (int c = 1; c < r.logits.dim(1); ++c) {
      if (r.logits.at(0, c) > r.logits.at(0, best)) best = c;
    }
    if (best == y[0]) ++correct;
  }
  std::printf(
      "\nadaptive serving (threshold 0.9, budget 70%% of subnet-4): "
      "accuracy %.2f%%, mean MACs/request %lld\n",
      100.0 * correct / data.test.size(),
      macs / data.test.size());
  std::printf("exit histogram: s1=%d s2=%d s3=%d s4=%d\n", exits[0], exits[1],
              exits[2], exits[3]);
  std::remove(path.c_str());
  return 0;
}
