// Anytime serving end to end: stand up a serve::Server on an untrained
// stepping model, submit requests with different deadlines and MAC budgets,
// and watch each one refine through the subnet ladder — preliminary answer
// first, better answers while slack remains (the paper's anytime-inference
// story as a library workflow).
//
// Also demonstrates the loopback TCP front end: the same server behind a
// TcpServer, driven by a TcpClient over the length-prefixed wire protocol.
#include <cstdio>
#include <thread>
#include <vector>

#include "baselines/any_width.h"
#include "core/latency.h"
#include "core/macs.h"
#include "models/models.h"
#include "serve/server.h"
#include "serve/tcp.h"
#include "tensor/ops.h"
#include "util/env.h"
#include "util/rng.h"

using namespace stepping;

int main() {
  const int subnets = 4;
  std::printf("== Anytime-inference serving ==\n");

  // --- A stepping model (prefix assignments; weights don't matter here) ---
  ModelConfig mc{.classes = 10, .expansion = 1.8,
                 .width_mult = env_or_double("STEPPING_WIDTH", 0.25)};
  Network net = build_lenet3c1l(mc);
  const std::int64_t full = full_macs(net);
  std::vector<std::int64_t> budgets;
  for (int i = 1; i <= subnets; ++i) budgets.push_back(full * i / (subnets + 1));
  assign_prefix_subnets(net, solve_prefix_fractions(net, budgets));

  // --- Library API: deadline-aware submit with per-step callbacks ---------
  serve::ServeConfig cfg;
  cfg.max_subnet = subnets;
  cfg.num_workers = 2;
  cfg.max_batch = 4;
  cfg.device = calibrate_device(net, subnets);
  serve::Server server(net, cfg);

  const double ladder_ms = server.planner().ladder_ms(subnets);
  struct Case {
    const char* name;
    double deadline_ms;
    std::int64_t mac_budget;
  };
  const Case cases[] = {
      {"no deadline      ", 0.0, 0},
      {"generous deadline", 4.0 * ladder_ms, 0},
      {"tight deadline   ", server.planner().ladder_ms(2), 0},
      {"tiny MAC budget  ", 0.0, server.planner().costs().full[0]},
  };

  Rng rng(7);
  for (const Case& c : cases) {
    Tensor x({1, 3, 32, 32});
    fill_normal(x, 0.0f, 1.0f, rng);
    serve::Request req;
    req.input = std::move(x);
    req.deadline_ms = c.deadline_ms;
    req.mac_budget = c.mac_budget;
    req.on_step = [&](const serve::StepUpdate& s) {
      std::printf("  %s step -> subnet %d at %6.2f ms (conf %.2f%s)\n", c.name,
                  s.subnet, s.at_ms, s.confidence, s.final ? ", final" : "");
    };
    const serve::ServedResult res = server.serve(std::move(req));
    std::printf("  %s exit=%d macs=%lld missed=%s\n", c.name, res.exit_subnet,
                static_cast<long long>(res.macs),
                res.deadline_missed ? "yes" : "no");
  }
  std::printf("%s", server.counters().to_string().c_str());

  // --- TCP front end: same server over the wire ---------------------------
  serve::TcpServer tcp(server, /*port=*/0);
  std::thread loop([&] { tcp.run(); });
  {
    serve::TcpClient client(tcp.port());
    Tensor x({1, 3, 32, 32});
    fill_normal(x, 0.0f, 1.0f, rng);
    serve::WireReply reply;
    if (client.infer(x, /*deadline_ms=*/0.0, /*mac_budget=*/0, reply)) {
      std::printf("tcp: 127.0.0.1:%d replied exit=%u logits=%zu macs=%lld\n",
                  tcp.port(), reply.exit_subnet, reply.logits.size(),
                  static_cast<long long>(reply.macs));
    }
    client.shutdown_server();
  }
  loop.join();
  server.shutdown();
  std::printf("done\n");
  return 0;
}
