// Scenario from the paper's introduction: a mobile platform whose available
// compute fluctuates (normal mode <-> power-saving mode, co-running tasks).
//
// A scheduler processes a stream of inference requests. At each time step
// the platform grants a MAC budget; the scheduler picks the largest subnet
// that fits and — crucially — when the budget RISES while a request is still
// current, SteppingNet upgrades the running result in place, reusing all
// work done so far. A slimmable-style system must restart from scratch on
// every switch (its small-subnet intermediate results are invalidated by
// larger subnets; paper Fig. 1a).
//
// The example reports accuracy and total MACs for:
//   restart    pick-largest-fitting, recompute from scratch on every switch
//   stepping   pick-largest-fitting with incremental upgrade (reuse)
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/incremental.h"
#include "core/macs.h"
#include "core/stepping_net.h"
#include "data/synthetic.h"
#include "models/models.h"
#include "util/env.h"
#include "util/table.h"

using namespace stepping;

namespace {

int argmax_row(const Tensor& logits) {
  int best = 0;
  for (int c = 1; c < logits.dim(1); ++c) {
    if (logits.at(0, c) > logits.at(0, best)) best = c;
  }
  return best;
}

}  // namespace

int main() {
  const double width = env_or_double("STEPPING_WIDTH", 0.25);
  std::printf("== Resource-varying scheduler (mobile platform) ==\n");

  const DataSplit data = make_synthetic(synth_cifar10(/*train_per_class=*/80,
                                                      /*test_per_class=*/30));
  ModelConfig ref_cfg{.classes = 10, .expansion = 1.0, .width_mult = width};
  Network reference = build_lenet3c1l(ref_cfg);
  ModelConfig mc = ref_cfg;
  mc.expansion = 1.8;

  SteppingConfig cfg;
  cfg.num_subnets = 4;
  cfg.mac_budget_frac = {0.10, 0.30, 0.50, 0.85};
  cfg.reference_macs = full_macs(reference);
  cfg.batches_per_iter = 3;
  cfg.max_iters = 40;

  SteppingNet sn(build_lenet3c1l(mc), cfg);
  std::printf("training (pretrain + construct + distill)...\n");
  sn.pretrain(data.train, /*epochs=*/4);
  sn.construct(data.train);
  sn.distill(data.train, /*epochs=*/2);

  std::vector<std::int64_t> level_macs;
  for (int i = 1; i <= 4; ++i) level_macs.push_back(sn.macs(i));

  // --- Simulate: each request lives through 4 scheduling ticks; the budget
  // per tick follows a DVFS-style random walk over power states (budgets
  // typically ramp in steps rather than jumping min->max). ------------------
  Rng rng(7);
  IncrementalExecutor ex(sn.network());
  const int requests = data.test.size();

  std::int64_t macs_restart = 0, macs_stepping = 0;
  int correct_restart = 0, correct_stepping = 0;
  int upgrades = 0;

  int power_state = 0;  // 0..3, scales the per-tick budget
  const double state_frac[] = {0.15, 0.35, 0.60, 1.05};
  Tensor x;
  std::vector<int> y;
  for (int r = 0; r < requests; ++r) {
    data.test.batch(r, 1, x, y);
    ex.reset();
    int level_restart = 0, level_stepping = 0;
    int pred_restart = -1, pred_stepping = -1;

    for (int tick = 0; tick < 4; ++tick) {
      // Random walk with upward drift while a request is active (co-running
      // tasks finishing free up compute).
      const int step = rng.bernoulli(0.65) ? 1 : -1;
      power_state = std::clamp(power_state + step, 0, 3);
      const std::int64_t budget = static_cast<std::int64_t>(
          state_frac[power_state] * static_cast<double>(level_macs.back()));

      // Largest level fitting this tick's budget.
      int target = 0;
      for (int l = 1; l <= 4; ++l) {
        if (level_macs[static_cast<std::size_t>(l - 1)] <= budget) target = l;
      }
      if (target == 0) continue;  // no capacity at all this tick

      // restart policy: recompute from scratch iff the target grew.
      if (target > level_restart) {
        macs_restart += level_macs[static_cast<std::size_t>(target - 1)];
        const Tensor logits = sn.predict(x, target);
        pred_restart = argmax_row(logits);
        level_restart = target;
      }

      // stepping policy: upgrade in place, paying only the step.
      if (target > level_stepping) {
        const Tensor logits = ex.run(x, target);
        macs_stepping += ex.last_step_macs();
        pred_stepping = argmax_row(logits);
        if (level_stepping > 0) ++upgrades;
        level_stepping = target;
      }
    }

    if (pred_restart == y[0]) ++correct_restart;
    if (pred_stepping == y[0]) ++correct_stepping;
  }

  Table table({"policy", "accuracy", "total MACs", "MACs vs restart"});
  table.add_row({"restart-on-switch",
                 Table::fmt_pct(static_cast<double>(correct_restart) / requests),
                 std::to_string(macs_restart), "100.00%"});
  table.add_row({"stepping (reuse)",
                 Table::fmt_pct(static_cast<double>(correct_stepping) / requests),
                 std::to_string(macs_stepping),
                 Table::fmt_pct(static_cast<double>(macs_stepping) /
                                static_cast<double>(macs_restart))});
  table.print("\nResults over " + std::to_string(requests) +
              " requests x 4 scheduling ticks:");
  std::printf("\nmid-request upgrades handled: %d\n", upgrades);
  std::printf(
      "Expected shape: identical accuracy (same final subnets), with the\n"
      "stepping policy spending substantially fewer MACs because upgrades\n"
      "reuse all previously computed intermediate results.\n");
  return 0;
}
