// Quickstart: the full SteppingNet pipeline on a synthetic CIFAR-10-like
// task, end to end — pretrain, construct nested subnets, distill, evaluate,
// and demonstrate incremental step-up inference.
//
// Knobs (env):
//   STEPPING_WIDTH   width multiplier (default 0.25 — small enough for a
//                    single CPU core; 1.0 = paper-faithful widths)
//   STEPPING_EPOCHS  pretraining epochs (default 6)
#include <cstdio>

#include "core/incremental.h"
#include "core/macs.h"
#include "core/stepping_net.h"
#include "data/synthetic.h"
#include "models/models.h"
#include "util/env.h"
#include "util/table.h"
#include "util/timer.h"

using namespace stepping;

int main() {
  const double width = env_or_double("STEPPING_WIDTH", 0.25);
  const int epochs = static_cast<int>(env_or_int("STEPPING_EPOCHS", 6));

  std::printf("== SteppingNet quickstart (width_mult=%.2f) ==\n", width);
  Timer total;

  // 1. Data: synthetic stand-in for CIFAR-10 (see DESIGN.md section 2).
  const DataSplit data = make_synthetic(synth_cifar10(/*train_per_class=*/120,
                                                      /*test_per_class=*/40));
  std::printf("data: %d train / %d test images, %d classes\n",
              data.train.size(), data.test.size(), data.train.num_classes);

  // 2. Reference (unexpanded) network defines the MAC denominator M_t.
  ModelConfig ref_cfg;
  ref_cfg.classes = 10;
  ref_cfg.expansion = 1.0;
  ref_cfg.width_mult = width;
  Network reference = build_lenet3c1l(ref_cfg);
  const std::int64_t ref_macs = full_macs(reference);

  // 3. Expanded network (paper expansion ratio 1.8 for LeNet-3C1L).
  ModelConfig cfg = ref_cfg;
  cfg.expansion = 1.8;
  Network expanded = build_lenet3c1l(cfg);

  SteppingConfig scfg;
  scfg.num_subnets = 4;
  scfg.mac_budget_frac = {0.10, 0.30, 0.50, 0.85};  // Table I budgets
  scfg.reference_macs = ref_macs;
  scfg.batches_per_iter = 4;
  scfg.max_iters = 60;
  scfg.sgd.lr = 0.05;

  SteppingNet sn(std::move(expanded), scfg);

  // 4. Pipeline.
  Timer t;
  sn.pretrain(data.train, epochs);
  std::printf("pretrain: %.1fs, full-net test accuracy %.2f%%\n", t.seconds(),
              100.0 * sn.accuracy(data.test, 1));

  t.reset();
  const ConstructionReport rep = sn.construct(data.train);
  std::printf("construct: %.1fs, %d iterations, budgets met: %s\n", t.seconds(),
              rep.iterations, rep.budgets_met ? "yes" : "no");

  t.reset();
  sn.distill(data.train, /*epochs=*/3);
  std::printf("distill: %.1fs\n", t.seconds());

  // 5. Results table (the shape of the paper's Table I).
  Table table({"subnet", "test acc", "MACs / M_t"});
  for (int i = 1; i <= scfg.num_subnets; ++i) {
    table.add_row({"subnet" + std::to_string(i),
                   Table::fmt_pct(sn.accuracy(data.test, i)),
                   Table::fmt_pct(sn.mac_fraction(i))});
  }
  table.print("\nPer-subnet accuracy vs compute:");

  // 6. Incremental step-up inference: reuse subnet-1 work inside subnet 4.
  Tensor x;
  std::vector<int> y;
  data.test.batch(0, 8, x, y);
  IncrementalExecutor ex(sn.network());
  ex.run(x, 1);
  const std::int64_t step1 = ex.last_step_macs();
  ex.run(x, scfg.num_subnets);
  std::printf(
      "\nincremental step-up 1 -> %d: executed %lld MACs vs %lld from scratch "
      "(%.1f%% reused)\n",
      scfg.num_subnets, static_cast<long long>(ex.last_step_macs()),
      static_cast<long long>(ex.last_full_macs()),
      100.0 * (1.0 - static_cast<double>(ex.last_step_macs()) /
                         static_cast<double>(ex.last_full_macs())));
  std::printf("(first step executed %lld MACs)\n", static_cast<long long>(step1));

  std::printf("\ntotal: %.1fs\n", total.seconds());
  return 0;
}
