// Scenario from the paper's introduction: an autonomous vehicle must
// recognize potential emergencies QUICKLY — a preliminary decision now beats
// a perfect decision after the deadline.
//
// Each incoming frame carries a compute deadline drawn from a fluctuating
// budget (MACs the platform can spend before the decision is due).
// Three policies are compared:
//   full-only   run the largest subnet; if the deadline is shorter than its
//               cost, the frame gets NO decision in time (counted wrong);
//   smallest    always answer with subnet 1 (fast but less accurate);
//   stepping    answer with subnet 1 immediately, then keep refining through
//               subnets 2..N while budget remains — the final in-budget
//               answer counts. Reuse makes each refinement pay only the
//               incremental MACs.
#include <cstdio>
#include <vector>

#include "core/incremental.h"
#include "core/macs.h"
#include "core/stepping_net.h"
#include "data/synthetic.h"
#include "models/models.h"
#include "util/env.h"
#include "util/table.h"

using namespace stepping;

namespace {

int argmax_row(const Tensor& logits, int row) {
  int best = 0;
  for (int c = 1; c < logits.dim(1); ++c) {
    if (logits.at(row, c) > logits.at(row, best)) best = c;
  }
  return best;
}

}  // namespace

int main() {
  const double width = env_or_double("STEPPING_WIDTH", 0.25);
  std::printf("== Early-decision scenario (autonomous platform) ==\n");

  // --- Train a 4-subnet SteppingNet (small scale for the example) ---------
  const DataSplit data = make_synthetic(synth_cifar10(/*train_per_class=*/80,
                                                      /*test_per_class=*/30));
  ModelConfig ref_cfg{.classes = 10, .expansion = 1.0, .width_mult = width};
  Network reference = build_lenet3c1l(ref_cfg);
  ModelConfig mc = ref_cfg;
  mc.expansion = 1.8;

  SteppingConfig cfg;
  cfg.num_subnets = 4;
  cfg.mac_budget_frac = {0.10, 0.30, 0.50, 0.85};
  cfg.reference_macs = full_macs(reference);
  cfg.batches_per_iter = 3;
  cfg.max_iters = 40;

  SteppingNet sn(build_lenet3c1l(mc), cfg);
  std::printf("training (pretrain + construct + distill)...\n");
  sn.pretrain(data.train, /*epochs=*/4);
  sn.construct(data.train);
  sn.distill(data.train, /*epochs=*/2);

  std::vector<std::int64_t> level_macs;
  for (int i = 1; i <= 4; ++i) level_macs.push_back(sn.macs(i));

  // --- Simulate frames with fluctuating deadlines --------------------------
  Rng rng(2024);
  IncrementalExecutor ex(sn.network());
  const int frames = data.test.size();

  struct Policy {
    const char* name;
    int correct = 0;
    std::int64_t macs_spent = 0;
    int missed = 0;
  };
  Policy full{"full-only"}, small{"smallest-only"}, stepping{"stepping"};

  Tensor x;
  std::vector<int> y;
  for (int f = 0; f < frames; ++f) {
    data.test.batch(f, 1, x, y);
    // Deadline: uniformly one of "tight", "medium", "roomy" regimes.
    const double regime[] = {0.15, 0.45, 1.0};
    const std::int64_t budget = static_cast<std::int64_t>(
        regime[rng.next_below(3)] * static_cast<double>(level_macs.back()) * 1.1);

    // full-only: decision only if the largest subnet fits the deadline.
    if (level_macs.back() <= budget) {
      const Tensor logits = sn.predict(x, 4);
      if (argmax_row(logits, 0) == y[0]) ++full.correct;
      full.macs_spent += level_macs.back();
    } else {
      ++full.missed;  // no decision in time
    }

    // smallest-only.
    {
      const Tensor logits = sn.predict(x, 1);
      if (argmax_row(logits, 0) == y[0]) ++small.correct;
      small.macs_spent += level_macs.front();
    }

    // stepping: refine while the remaining budget covers the next step
    // (step cost estimated from the subnet MAC ladder before committing).
    {
      ex.reset();
      std::int64_t spent = 0;
      Tensor logits;
      for (int level = 1; level <= 4; ++level) {
        const std::int64_t estimate =
            level_macs[static_cast<std::size_t>(level - 1)] -
            (level > 1 ? level_macs[static_cast<std::size_t>(level - 2)] : 0);
        if (level > 1 && spent + estimate > budget) break;
        logits = ex.run(x, level);
        spent += ex.last_step_macs();
      }
      stepping.macs_spent += spent;
      if (argmax_row(logits, 0) == y[0]) ++stepping.correct;
    }
  }

  Table table({"policy", "decision acc", "missed deadlines", "avg MACs/frame"});
  for (const Policy* p : {&full, &small, &stepping}) {
    table.add_row({p->name,
                   Table::fmt_pct(static_cast<double>(p->correct) / frames),
                   std::to_string(p->missed),
                   std::to_string(p->macs_spent / frames)});
  }
  table.print("\nResults over " + std::to_string(frames) +
              " frames with fluctuating deadlines:");
  std::printf(
      "\nExpected shape: 'stepping' beats 'smallest-only' on accuracy and\n"
      "'full-only' on missed deadlines — a preliminary decision is always\n"
      "available, refined whenever budget allows.\n");
  return 0;
}
